// Dataset-generator tests: schema conformance (paper Table II shapes),
// determinism, label sanity, and the planted-signal invariants each
// generator promises.
#include <gtest/gtest.h>

#include <set>

#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/kg_generator.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"

namespace amdgcnn::datasets {
namespace {

// Small options so the whole suite stays fast.
PrimeKGSimOptions small_primekg() {
  PrimeKGSimOptions o;
  o.scale = 0.3;
  o.num_train = 120;
  o.num_test = 40;
  return o;
}

BioKGSimOptions small_biokg() {
  BioKGSimOptions o;
  o.scale = 0.3;
  o.num_train = 120;
  o.num_test = 40;
  return o;
}

WordNetSimOptions small_wordnet() {
  WordNetSimOptions o;
  o.num_nodes = 600;
  o.num_train = 150;
  o.num_test = 50;
  return o;
}

CoraSimOptions small_cora() {
  CoraSimOptions o;
  o.num_nodes = 400;
  o.num_edges = 900;
  o.num_pos_links = 120;
  return o;
}

TEST(GraphBuilderTest, DeduplicatesEdges) {
  graph::KnowledgeGraph g(1, 1);
  g.add_node(0);
  g.add_node(0);
  GraphBuilder b(g);
  EXPECT_TRUE(b.add_edge_unique(0, 1, 0));
  EXPECT_FALSE(b.add_edge_unique(0, 1, 0));
  EXPECT_FALSE(b.add_edge_unique(1, 0, 0));  // reversed duplicate
  EXPECT_FALSE(b.add_edge_unique(1, 1, 0));  // self loop
  EXPECT_EQ(b.num_edges_added(), 1);
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_TRUE(b.has_edge(1, 0));
}

TEST(NoisyLabel, ZeroNoiseIsIdentityAndNoiseChangesClass) {
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(noisy_label(2, 5, 0.0, rng), 2);
  for (int i = 0; i < 50; ++i) {
    const auto l = noisy_label(2, 5, 1.0, rng);
    EXPECT_NE(l, 2);
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
}

TEST(SplitLinks, ExactSizesAndThrowsWhenShort) {
  util::Rng rng(2);
  std::vector<seal::LinkExample> links(30, {0, 1, 0});
  LinkDataset ds;
  split_links(links, 20, 10, rng, ds);
  EXPECT_EQ(ds.train_links.size(), 20u);
  EXPECT_EQ(ds.test_links.size(), 10u);
  EXPECT_THROW(split_links(links, 25, 10, rng, ds), std::invalid_argument);
}

// ---- Per-dataset schema checks ------------------------------------------------

TEST(PrimeKGSim, SchemaMatchesPaperTable2Shape) {
  auto ds = make_primekg_sim(small_primekg());
  EXPECT_EQ(ds.name, "primekg_sim");
  EXPECT_EQ(ds.graph.num_node_types(), 10);   // 10 biological scales
  EXPECT_EQ(ds.graph.num_edge_types(), 30);   // 30 relations
  EXPECT_EQ(ds.graph.edge_attr_dim(), 2);     // +/- polarity one-hot
  EXPECT_EQ(ds.num_classes, 3);
  EXPECT_EQ(ds.class_names.size(), 3u);
  EXPECT_EQ(ds.neighborhood_mode, graph::NeighborhoodMode::kIntersection);
  EXPECT_EQ(ds.train_links.size(), 120u);
  EXPECT_EQ(ds.test_links.size(), 40u);
  EXPECT_GT(ds.graph.num_edges(), ds.graph.num_nodes());
}

TEST(PrimeKGSim, TargetsAreDrugDiseasePairsWithoutDirectEdges) {
  auto ds = make_primekg_sim(small_primekg());
  for (const auto* links : {&ds.train_links, &ds.test_links})
    for (const auto& l : *links) {
      EXPECT_EQ(ds.graph.node_type(l.a), kDrug);
      EXPECT_EQ(ds.graph.node_type(l.b), kDisease);
      EXPECT_FALSE(ds.graph.has_edge(l.a, l.b));
      EXPECT_GE(l.label, 0);
      EXPECT_LT(l.label, 3);
    }
}

TEST(PrimeKGSim, EdgeAttrsEncodePolarityPartition) {
  auto ds = make_primekg_sim(small_primekg());
  for (std::int32_t t = 0; t < 30; ++t) {
    auto attr = ds.graph.edge_type_attr(t);
    EXPECT_EQ(attr[0] + attr[1], 1.0);
    EXPECT_EQ(attr[0], t < 15 ? 1.0 : 0.0);
  }
}

TEST(PrimeKGSim, AllLabelsRepresented) {
  auto ds = make_primekg_sim(small_primekg());
  auto hist = seal::label_histogram(ds.train_links, 3);
  for (auto h : hist) EXPECT_GT(h, 0);
}

TEST(PrimeKGSim, DeterministicPerSeed) {
  auto a = make_primekg_sim(small_primekg());
  auto b = make_primekg_sim(small_primekg());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  ASSERT_EQ(a.train_links.size(), b.train_links.size());
  for (std::size_t i = 0; i < a.train_links.size(); ++i) {
    EXPECT_EQ(a.train_links[i].a, b.train_links[i].a);
    EXPECT_EQ(a.train_links[i].label, b.train_links[i].label);
  }
  auto opts = small_primekg();
  opts.seed = 1234;
  auto c = make_primekg_sim(opts);
  EXPECT_NE(a.graph.num_edges(), c.graph.num_edges());
}

TEST(BioKGSim, SchemaMatchesPaperTable2Shape) {
  auto ds = make_biokg_sim(small_biokg());
  EXPECT_EQ(ds.graph.num_node_types(), 5);
  EXPECT_EQ(ds.graph.num_edge_types(), 51);
  EXPECT_EQ(ds.graph.edge_attr_dim(), 3);
  EXPECT_EQ(ds.num_classes, 7);
  EXPECT_EQ(ds.neighborhood_mode, graph::NeighborhoodMode::kUnion);
  for (const auto& l : ds.train_links) {
    EXPECT_EQ(ds.graph.node_type(l.a), kProtein);
    EXPECT_EQ(ds.graph.node_type(l.b), kProtein);
    EXPECT_LT(l.label, 7);
  }
}

TEST(BioKGSim, EdgeAttrIsLevelOneHot) {
  auto ds = make_biokg_sim(small_biokg());
  for (std::int32_t t = 0; t < 51; ++t) {
    auto attr = ds.graph.edge_type_attr(t);
    double sum = 0.0;
    for (double v : attr) sum += v;
    EXPECT_EQ(sum, 1.0);
    EXPECT_EQ(attr[t % 3], 1.0);
  }
}

TEST(WordNetSim, HomogeneousNodesRichEdges) {
  auto ds = make_wordnet_sim(small_wordnet());
  EXPECT_EQ(ds.graph.num_node_types(), 1);   // the paper's key property
  EXPECT_EQ(ds.graph.num_edge_types(), 18);
  EXPECT_EQ(ds.graph.edge_attr_dim(), 18);
  EXPECT_EQ(ds.graph.node_feat_dim(), 0);    // no node features at all
  EXPECT_EQ(ds.num_classes, 18);
}

TEST(WordNetSim, RelationTableIsSymmetricAndCovers18Classes) {
  std::set<std::int32_t> values;
  for (std::int32_t i = 0; i < kWordNetRoles; ++i)
    for (std::int32_t j = 0; j < kWordNetRoles; ++j) {
      EXPECT_EQ(wordnet_relation_table(i, j), wordnet_relation_table(j, i));
      values.insert(wordnet_relation_table(i, j));
    }
  EXPECT_EQ(values.size(), 18u);
  EXPECT_THROW(wordnet_relation_table(-1, 0), std::invalid_argument);
  EXPECT_THROW(wordnet_relation_table(0, 6), std::invalid_argument);
}

TEST(WordNetSim, MeanDegreeNearConfigured) {
  auto opts = small_wordnet();
  auto ds = make_wordnet_sim(opts);
  const double mean_degree = 2.0 * static_cast<double>(ds.graph.num_edges()) /
                             static_cast<double>(ds.graph.num_nodes());
  EXPECT_NEAR(mean_degree, opts.mean_degree, 0.5);
}

TEST(CoraSim, FaithfulScaleAndBinaryTask) {
  auto ds = make_cora_sim(small_cora());
  EXPECT_EQ(ds.graph.num_nodes(), 400);
  EXPECT_EQ(ds.graph.num_edges(), 900);
  EXPECT_EQ(ds.graph.num_edge_types(), 1);
  EXPECT_EQ(ds.graph.edge_attr_dim(), 0);    // no edge attributes
  EXPECT_EQ(ds.graph.node_feat_dim(), 7);    // noisy community one-hot
  EXPECT_EQ(ds.num_classes, 2);
  // 80/20 split of 240 links.
  EXPECT_EQ(ds.train_links.size() + ds.test_links.size(), 240u);
  EXPECT_EQ(ds.test_links.size(), 48u);
}

TEST(CoraSim, PositivesAreEdgesNegativesAreNot) {
  auto ds = make_cora_sim(small_cora());
  for (const auto* links : {&ds.train_links, &ds.test_links})
    for (const auto& l : *links) {
      if (l.label == 1) EXPECT_TRUE(ds.graph.has_edge(l.a, l.b));
      else EXPECT_FALSE(ds.graph.has_edge(l.a, l.b));
    }
}

TEST(CoraSim, NodeFeaturesAreOneHot) {
  auto ds = make_cora_sim(small_cora());
  for (graph::NodeId v = 0; v < 50; ++v) {
    auto f = ds.graph.node_features(v);
    double sum = 0.0;
    for (double x : f) sum += x;
    EXPECT_EQ(sum, 1.0);
  }
}

TEST(Generators, RejectBadOptions) {
  PrimeKGSimOptions p;
  p.scale = -1.0;
  EXPECT_THROW(make_primekg_sim(p), std::invalid_argument);
  BioKGSimOptions b;
  b.scale = 0.0;
  EXPECT_THROW(make_biokg_sim(b), std::invalid_argument);
  WordNetSimOptions w;
  w.num_nodes = 3;
  EXPECT_THROW(make_wordnet_sim(w), std::invalid_argument);
  CoraSimOptions c;
  c.num_pos_links = 10000;
  EXPECT_THROW(make_cora_sim(c), std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn::datasets
