// Tests for the related-work baselines: pair-feature extraction, logistic
// regression, CART decision tree, and the Weisfeiler-Lehman Neural Machine.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/decision_tree.h"
#include "baselines/logistic_regression.h"
#include "baselines/wlnm.h"
#include "heuristics/pair_features.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

// ---- Pair features ------------------------------------------------------------

TEST(PairFeatures, NamesAlignWithVectorWidth) {
  auto g = testing::triangle_with_tail();
  const auto f = heuristics::pair_features(g, 0, 1);
  EXPECT_EQ(f.size(), heuristics::pair_feature_names().size());
}

TEST(PairFeatures, ValuesMatchIndividualHeuristics) {
  auto g = testing::triangle_with_tail();
  const auto f = heuristics::pair_features(g, 0, 1);
  EXPECT_DOUBLE_EQ(f[0], 1.0);                    // common neighbors: node 2
  EXPECT_NEAR(f[1], 1.0 / 3.0, 1e-12);            // jaccard
  EXPECT_NEAR(f[2], 1.0 / std::log(3.0), 1e-12);  // adamic-adar
  EXPECT_DOUBLE_EQ(f[3], 4.0);                    // PA: deg 2 * deg 2
  EXPECT_DOUBLE_EQ(f[4], 2.0);                    // deg(0)
  EXPECT_DOUBLE_EQ(f[5], 2.0);                    // deg(1)
  // Shortest path with the target edge MASKED: 0-2-1 -> 2.
  EXPECT_DOUBLE_EQ(f[6], 2.0);
}

TEST(PairFeatures, UnreachablePairGetsCappedDistance) {
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(2, 3, 0);
  g.finalize();
  const auto f = heuristics::pair_features(g, 0, 2);
  EXPECT_DOUBLE_EQ(f[6], 8.0);  // capped sentinel
}

TEST(PairFeatures, MatrixMatchesPerPairExtraction) {
  auto g = testing::path_graph(6);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs = {
      {0, 2}, {1, 4}, {3, 5}};
  const auto x = heuristics::pair_feature_matrix(g, pairs);
  const auto d = heuristics::pair_feature_names().size();
  ASSERT_EQ(x.size(), pairs.size() * d);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto f =
        heuristics::pair_features(g, pairs[i].first, pairs[i].second);
    for (std::size_t c = 0; c < d; ++c) EXPECT_EQ(x[i * d + c], f[c]);
  }
}

TEST(FeatureScalerTest, StandardisesColumns) {
  std::vector<double> x = {1, 10, 3, 20, 5, 30};  // [3, 2]
  auto scaler = heuristics::FeatureScaler::fit(x, 2);
  EXPECT_DOUBLE_EQ(scaler.mean[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.mean[1], 20.0);
  scaler.apply(x);
  // Column means ~0, stddev ~1.
  EXPECT_NEAR(x[0] + x[2] + x[4], 0.0, 1e-12);
  EXPECT_NEAR(x[1] + x[3] + x[5], 0.0, 1e-12);
  EXPECT_NEAR(x[4], std::sqrt(1.5), 1e-9);
  EXPECT_THROW(heuristics::FeatureScaler::fit({}, 2), std::invalid_argument);
}

TEST(FeatureScalerTest, ConstantColumnDoesNotDivideByZero) {
  std::vector<double> x = {5, 5, 5, 5};  // [4, 1] constant
  auto scaler = heuristics::FeatureScaler::fit(x, 1);
  scaler.apply(x);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

// ---- Logistic regression ---------------------------------------------------------

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  util::Rng rng(1);
  std::vector<double> x;
  std::vector<std::int32_t> y;
  for (int i = 0; i < 200; ++i) {
    const std::int32_t label = i % 2;
    x.push_back(rng.normal(label ? 2.0 : -2.0, 0.5));
    x.push_back(rng.normal(label ? -1.0 : 1.0, 0.5));
    y.push_back(label);
  }
  baselines::LogisticRegression lr(2, 2);
  lr.fit(x, y);
  const auto preds = lr.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += preds[i] == y[i];
  EXPECT_GT(correct, 190);
}

TEST(LogisticRegressionTest, MulticlassProbabilitiesSumToOne) {
  util::Rng rng(2);
  std::vector<double> x;
  std::vector<std::int32_t> y;
  for (int i = 0; i < 90; ++i) {
    const std::int32_t label = i % 3;
    x.push_back(rng.normal(label * 2.0, 0.4));
    y.push_back(label);
  }
  baselines::LogisticRegression lr(1, 3);
  lr.fit(x, y);
  const auto probs = lr.predict_proba(x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(probs[i * 3] + probs[i * 3 + 1] + probs[i * 3 + 2], 1.0,
                1e-9);
  // Accuracy well above chance.
  const auto preds = lr.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += preds[i] == y[i];
  EXPECT_GT(correct, 70);
}

TEST(LogisticRegressionTest, ValidatesInputs) {
  EXPECT_THROW(baselines::LogisticRegression(3, 1), std::invalid_argument);
  baselines::LogisticRegression lr(2, 2);
  EXPECT_THROW(lr.fit({1.0}, {0}), std::invalid_argument);
  EXPECT_THROW(lr.fit({1.0, 2.0}, {5}), std::invalid_argument);
}

// ---- Decision tree -------------------------------------------------------------------

TEST(DecisionTreeTest, LearnsAxisAlignedRule) {
  // y = (x0 > 0.5) XOR-free simple threshold rule.
  std::vector<double> x;
  std::vector<std::int32_t> y;
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform();
    x.push_back(v);
    x.push_back(rng.uniform());  // noise feature
    y.push_back(v > 0.5 ? 1 : 0);
  }
  baselines::DecisionTree tree(2, 2);
  tree.fit(x, y);
  const auto preds = tree.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) correct += preds[i] == y[i];
  EXPECT_GT(correct, 290);
  EXPECT_GE(tree.depth(), 1);
}

TEST(DecisionTreeTest, LearnsBandRuleNeedingDepthTwo) {
  // y = 1 iff x0 in (0.3, 0.7): requires two stacked splits on the same
  // feature, so a depth-1 stump cannot express it but greedy CART can.
  std::vector<double> x;
  std::vector<std::int32_t> y;
  util::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform();
    x.push_back(a);
    x.push_back(rng.uniform());  // noise feature
    y.push_back(a > 0.3 && a < 0.7 ? 1 : 0);
  }
  baselines::DecisionTreeOptions deep;
  deep.max_depth = 3;
  baselines::DecisionTree tree(2, 2, deep);
  tree.fit(x, y);
  const auto preds = tree.predict(x);
  int deep_correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    deep_correct += preds[i] == y[i];
  EXPECT_GT(deep_correct, 380);

  baselines::DecisionTreeOptions stump;
  stump.max_depth = 1;
  baselines::DecisionTree one(2, 2, stump);
  one.fit(x, y);
  const auto stump_preds = one.predict(x);
  int stump_correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    stump_correct += stump_preds[i] == y[i];
  EXPECT_GT(deep_correct, stump_correct);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  std::vector<double> x;
  std::vector<std::int32_t> y;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.bernoulli(0.5) ? 1 : 0);  // pure noise
  }
  baselines::DecisionTreeOptions opts;
  opts.max_depth = 2;
  baselines::DecisionTree tree(1, 2, opts);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<std::int32_t> y = {1, 1, 1, 1};
  baselines::DecisionTree tree(1, 2);
  tree.fit(x, y);
  EXPECT_EQ(tree.num_nodes(), 1);
  const auto probs = tree.predict_proba({2.5});
  EXPECT_DOUBLE_EQ(probs[1], 1.0);
}

TEST(DecisionTreeTest, ValidatesUsage) {
  baselines::DecisionTree tree(2, 2);
  EXPECT_THROW(tree.predict({1.0, 2.0}), std::logic_error);
  EXPECT_THROW(tree.fit({1.0}, {0}), std::invalid_argument);
  EXPECT_THROW(tree.fit({1.0, 2.0}, {7}), std::invalid_argument);
  EXPECT_THROW(baselines::DecisionTree(0, 2), std::invalid_argument);
}

// ---- WLNM -------------------------------------------------------------------------------

TEST(WlnmEncoding, OrderPutsTargetsFirst) {
  auto g = testing::triangle_with_tail();
  graph::ExtractOptions eo;
  auto sub = graph::extract_enclosing_subgraph(g, 0, 1, eo);
  const auto order = baselines::palette_wl_order(sub, 3);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  // Order is a permutation.
  std::set<std::int32_t> uniq(order.begin(), order.end());
  EXPECT_EQ(uniq.size(), order.size());
}

TEST(WlnmEncoding, FixedSizeAndTargetEntryZeroed) {
  auto g = testing::triangle_with_tail();
  graph::ExtractOptions eo;
  auto sub = graph::extract_enclosing_subgraph(g, 0, 1, eo);
  const auto enc = baselines::wlnm_encode(sub, 6, 3);
  EXPECT_EQ(enc.size(), 15u);  // 6*5/2
  // Entry (0, 1) — the target pair — must be zero even though connectivity
  // through node 2 exists elsewhere in the encoding.
  EXPECT_EQ(enc[0], 0.0);
  double total = 0.0;
  for (double v : enc) total += v;
  EXPECT_GT(total, 0.0);  // some structure survived
  EXPECT_THROW(baselines::wlnm_encode(sub, 1, 3), std::invalid_argument);
}

TEST(WlnmEncoding, PaddingForTinySubgraphs) {
  auto g = testing::path_graph(3);
  graph::ExtractOptions eo;
  auto sub = graph::extract_enclosing_subgraph(g, 0, 2, eo);
  const auto enc = baselines::wlnm_encode(sub, 8, 2);
  EXPECT_EQ(enc.size(), 28u);
}

TEST(WlnmModel, LearnsTopologicalClassOnToyTask) {
  // Binary task where class = "targets share many neighbors": exactly the
  // structural pattern WLNM was designed to learn.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 140; ++i) g.add_node(0);
  util::Rng rng(6);
  std::vector<seal::LinkExample> links;
  graph::NodeId next_aux = 60;
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<graph::NodeId>(2 * i);
    const auto b = static_cast<graph::NodeId>(2 * i + 1);
    const std::int32_t label = i % 2;
    const int shared = label ? 3 : 1;
    for (int s = 0; s < shared && next_aux < 140; ++s) {
      g.add_edge(a, next_aux, 0);
      g.add_edge(b, next_aux, 0);
      ++next_aux;
    }
    links.push_back({a, b, label});
  }
  g.finalize();

  baselines::WlnmOptions opts;
  opts.vertex_budget = 8;
  opts.epochs = 60;
  baselines::Wlnm model(2, opts);
  model.fit(g, links);
  EXPECT_GT(model.evaluate_auc(g, links), 0.9);
}

TEST(WlnmModel, ValidatesUsage) {
  EXPECT_THROW(baselines::Wlnm(1), std::invalid_argument);
  baselines::Wlnm model(2);
  auto g = testing::path_graph(4);
  EXPECT_THROW(model.fit(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn
