// Integration tests for the public API (SealLinkClassifier) and the
// experiment plumbing used by the benchmark harness.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.h"
#include "core/seal_link_classifier.h"
#include "datasets/cora_sim.h"
#include "datasets/wordnet_sim.h"

namespace amdgcnn::core {
namespace {

datasets::LinkDataset tiny_wordnet() {
  datasets::WordNetSimOptions o;
  o.num_nodes = 400;
  o.num_train = 160;
  o.num_test = 60;
  o.mean_degree = 5.0;
  return datasets::make_wordnet_sim(o);
}

TEST(SealLinkClassifier, FitPredictEvaluateRoundTrip) {
  auto data = tiny_wordnet();
  ClassifierConfig cfg;
  cfg.model.kind = models::GnnKind::kAMDGCNN;
  cfg.model.hidden_dim = 16;
  cfg.model.heads = 2;
  cfg.model.num_layers = 2;
  cfg.model.sort_k = 10;
  cfg.training.epochs = 2;
  cfg.dataset.extract.max_nodes = 32;
  SealLinkClassifier clf(cfg);
  EXPECT_FALSE(clf.fitted());
  EXPECT_THROW(clf.evaluate(data.graph, data.test_links), std::logic_error);

  auto curve = clf.fit(data.graph, data.train_links, data.num_classes,
                       /*eval_every=*/1);
  EXPECT_TRUE(clf.fitted());
  EXPECT_EQ(curve.size(), 2u);

  auto probs = clf.predict_proba(data.graph, data.test_links);
  EXPECT_EQ(probs.size(), data.test_links.size() * 18u);
  for (std::size_t i = 0; i < data.test_links.size(); ++i) {
    double row = 0.0;
    for (int c = 0; c < 18; ++c) row += probs[i * 18 + c];
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
  auto preds = clf.predict(data.graph, data.test_links);
  EXPECT_EQ(preds.size(), data.test_links.size());
  for (auto p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 18);
  }
  auto ev = clf.evaluate(data.graph, data.test_links);
  EXPECT_GE(ev.metrics.macro_auc, 0.0);
  EXPECT_LE(ev.metrics.macro_auc, 1.0);
  EXPECT_EQ(clf.model().config().num_classes, 18);
}

TEST(SealLinkClassifier, RejectsEmptyTraining) {
  ClassifierConfig cfg;
  SealLinkClassifier clf(cfg);
  auto data = tiny_wordnet();
  EXPECT_THROW(clf.fit(data.graph, {}, 2), std::invalid_argument);
}

TEST(BenchScaleTest, EnvSelection) {
  unsetenv("AMDGCNN_BENCH_SCALE");
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kQuick);
  setenv("AMDGCNN_BENCH_SCALE", "full", 1);
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kFull);
  setenv("AMDGCNN_BENCH_SCALE", "quick", 1);
  EXPECT_EQ(bench_scale_from_env(), BenchScale::kQuick);
  setenv("AMDGCNN_BENCH_SCALE", "bogus", 1);
  EXPECT_THROW(bench_scale_from_env(), std::runtime_error);
  unsetenv("AMDGCNN_BENCH_SCALE");
  EXPECT_STREQ(bench_scale_name(BenchScale::kFull), "full");
  EXPECT_EQ(scaled_links(1000, BenchScale::kFull), 1000);
  EXPECT_EQ(scaled_links(1000, BenchScale::kQuick), 500);
  EXPECT_EQ(scaled_links(40, BenchScale::kQuick), 50);  // floor
}

TEST(PrepareSealDataset, HonoursDatasetNeighborhoodRule) {
  auto data = tiny_wordnet();
  auto ds = prepare_seal_dataset(data, /*max_subgraph_nodes=*/24);
  EXPECT_EQ(ds.train.size(), data.train_links.size());
  EXPECT_EQ(ds.test.size(), data.test_links.size());
  EXPECT_EQ(ds.num_classes, 18);
  EXPECT_EQ(ds.edge_attr_dim, 18);
  for (const auto& s : ds.train) EXPECT_LE(s.num_nodes, 24);
  EXPECT_GT(ds.mean_subgraph_nodes(), 2.0);
}

TEST(RunModel, ProducesCurveAndFinalEval) {
  auto data = tiny_wordnet();
  auto ds = prepare_seal_dataset(data, 24);
  hpo::HyperParams hp;
  hp.hidden_dim = 16;
  hp.sort_k = 10;
  hp.learning_rate = 2e-3;
  auto result = run_model(ds, models::GnnKind::kAMDGCNN, hp, /*epochs=*/4,
                          /*seed=*/1, /*eval_every=*/2);
  EXPECT_EQ(result.model_name, "AM-DGCNN");
  EXPECT_EQ(result.curve.size(), 2u);
  EXPECT_GT(result.num_parameters, 0);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GE(result.final_eval.metrics.macro_auc, 0.0);
}

TEST(RunModel, TrainSubsetLimitsData) {
  auto data = tiny_wordnet();
  auto ds = prepare_seal_dataset(data, 24);
  hpo::HyperParams hp;
  hp.hidden_dim = 16;
  hp.sort_k = 10;
  auto full = run_model(ds, models::GnnKind::kVanillaDGCNN, hp, 1, 1);
  auto small = run_model(ds, models::GnnKind::kVanillaDGCNN, hp, 1, 1,
                         /*eval_every=*/0, /*train_subset=*/20);
  EXPECT_LT(small.train_seconds, full.train_seconds);
}

TEST(TuneModel, ImprovesOverWorstTrial) {
  auto data = tiny_wordnet();
  auto ds = prepare_seal_dataset(data, 20);
  hpo::BayesOptOptions opts;
  opts.num_initial = 2;
  opts.num_iterations = 1;
  auto result = tune_model(ds, models::GnnKind::kAMDGCNN, opts,
                           /*tune_epochs=*/1, /*max_train_samples=*/60,
                           /*max_val_samples=*/40);
  EXPECT_EQ(result.history.size(), 3u);
  double worst = 1e300;
  for (const auto& t : result.history) worst = std::min(worst, t.value);
  EXPECT_GE(result.best_value, worst);
}

TEST(CoraTunedDefaults, InsideSearchSpace) {
  hpo::SearchSpace space;
  const auto hp = cora_tuned_defaults();
  EXPECT_NO_THROW(space.encode(hp));
}

}  // namespace
}  // namespace amdgcnn::core
