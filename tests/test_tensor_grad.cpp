// Gradient checks: analytic (tape) gradients vs central differences for
// every differentiable op, individually and composed.
#include <gtest/gtest.h>

#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"
#include "test_util.h"

namespace amdgcnn::ag {
namespace {

using amdgcnn::testing::expect_gradient_matches;

/// Named differentiable transform [3,4] -> scalar used by the TEST_P sweep.
struct OpCase {
  const char* name;
  std::function<Tensor(const Tensor&)> apply;  // returns a scalar loss
};

Tensor to_scalar(const Tensor& t) { return ops::mean(t); }

std::vector<OpCase> unary_cases() {
  util::Rng rng(123);
  auto other = Tensor::randn({3, 4}, rng);
  auto rowvec = Tensor::randn({4}, rng);
  auto right = Tensor::randn({4, 2}, rng);
  return {
      {"add", [other](const Tensor& x) { return to_scalar(ops::add(x, other)); }},
      {"sub", [other](const Tensor& x) { return to_scalar(ops::sub(other, x)); }},
      {"mul", [other](const Tensor& x) { return to_scalar(ops::mul(x, other)); }},
      {"mul_self",
       [](const Tensor& x) { return to_scalar(ops::mul(x, x)); }},
      {"add_scalar",
       [](const Tensor& x) { return to_scalar(ops::add_scalar(x, 2.5)); }},
      {"mul_scalar",
       [](const Tensor& x) { return to_scalar(ops::mul_scalar(x, -1.7)); }},
      {"add_rowvec",
       [rowvec](const Tensor& x) {
         return to_scalar(ops::add_rowvec(x, rowvec));
       }},
      {"matmul_left",
       [right](const Tensor& x) { return to_scalar(ops::matmul(x, right)); }},
      {"transpose",
       [](const Tensor& x) { return to_scalar(ops::transpose(x)); }},
      {"reshape",
       [](const Tensor& x) {
         return to_scalar(ops::reshape(x, {4, 3}));
       }},
      {"concat_cols",
       [other](const Tensor& x) {
         return to_scalar(ops::concat_cols({x, other, x}));
       }},
      {"concat_rows",
       [other](const Tensor& x) {
         return to_scalar(ops::concat_rows({x, other}));
       }},
      {"slice_rows",
       [](const Tensor& x) { return to_scalar(ops::slice_rows(x, 1, 2)); }},
      {"gather_rows",
       [](const Tensor& x) {
         return to_scalar(ops::gather_rows(x, {0, 2, 2, 1}));
       }},
      {"scale_rows",
       [](const Tensor& x) {
         return to_scalar(ops::scale_rows(x, {0.5, -2.0, 3.0}));
       }},
      {"leaky_relu",
       [](const Tensor& x) { return to_scalar(ops::leaky_relu(x, 0.2)); }},
      {"tanh",
       [](const Tensor& x) { return to_scalar(ops::tanh_act(x)); }},
      {"sigmoid",
       [](const Tensor& x) { return to_scalar(ops::sigmoid(x)); }},
      {"sum", [](const Tensor& x) { return ops::sum(x); }},
      {"mean", [](const Tensor& x) { return ops::mean(x); }},
      {"softmax",
       [](const Tensor& x) {
         // Weighted combination so the softmax gradient is non-trivial.
         auto w = Tensor::from_data(
             {3, 4}, {1, -2, 3, 0.5, 2, 0, -1, 1, 0.3, 0.7, -0.2, 2});
         return ops::sum(ops::mul(ops::softmax_rows(x), w));
       }},
      {"log_softmax",
       [](const Tensor& x) {
         auto w = Tensor::from_data(
             {3, 4}, {1, -2, 3, 0.5, 2, 0, -1, 1, 0.3, 0.7, -0.2, 2});
         return ops::sum(ops::mul(ops::log_softmax_rows(x), w));
       }},
      {"cross_entropy",
       [](const Tensor& x) { return ops::cross_entropy(x, {1, 3, 0}); }},
      {"heads_dot",
       [](const Tensor& x) {
         auto a = Tensor::from_data({1, 4}, {0.5, -1, 2, 0.3});
         return to_scalar(ops::heads_dot(x, a, 2));
       }},
      {"heads_scale",
       [](const Tensor& x) {
         auto alpha = Tensor::from_data({3, 2}, {1, 2, -1, 0.5, 3, -2});
         return to_scalar(ops::heads_scale(x, alpha, 2));
       }},
      {"scatter_add",
       [](const Tensor& x) {
         return to_scalar(ops::scatter_add_rows(x, {1, 0, 1}, 2));
       }},
      {"segment_softmax",
       [](const Tensor& x) {
         auto w = Tensor::from_data(
             {3, 4}, {1, -2, 3, 0.5, 2, 0, -1, 1, 0.3, 0.7, -0.2, 2});
         return ops::sum(ops::mul(ops::segment_softmax(x, {0, 1, 0}, 2), w));
       }},
      {"sort_pool",
       [](const Tensor& x) {
         auto w = Tensor::from_data({2, 4}, {1, -2, 3, 0.5, 2, 0, -1, 1});
         return ops::sum(ops::mul(ops::sort_pool(x, 2), w));
       }},
      {"composite_mlp_like",
       [right](const Tensor& x) {
         auto h = ops::tanh_act(ops::matmul(x, right));
         return ops::mean(ops::mul(h, h));
       }},
  };
}

class UnaryGradTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnaryGradTest, MatchesNumericalGradient) {
  const auto cases = unary_cases();
  const auto& oc = cases[GetParam()];
  SCOPED_TRACE(oc.name);
  util::Rng rng(7 + GetParam());
  auto x = Tensor::randn({3, 4}, rng);
  expect_gradient_matches(x, [&] { return oc.apply(x); });
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, UnaryGradTest,
    ::testing::Range(std::size_t{0}, unary_cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string n = unary_cases()[info.param].name;
      return n;
    });

TEST(BinaryGrad, MatmulRightOperand) {
  util::Rng rng(19);
  auto a = Tensor::randn({3, 4}, rng);
  auto b = Tensor::randn({4, 2}, rng);
  expect_gradient_matches(b, [&] { return ops::mean(ops::matmul(a, b)); });
}

TEST(BinaryGrad, AddRowvecBiasOperand) {
  util::Rng rng(20);
  auto a = Tensor::randn({3, 4}, rng);
  auto bias = Tensor::randn({4}, rng);
  expect_gradient_matches(bias,
                          [&] { return ops::mean(ops::add_rowvec(a, bias)); });
}

TEST(BinaryGrad, HeadsDotParameterOperand) {
  util::Rng rng(21);
  auto x = Tensor::randn({5, 6}, rng);
  auto a = Tensor::randn({1, 6}, rng);
  expect_gradient_matches(a,
                          [&] { return ops::mean(ops::heads_dot(x, a, 3)); });
}

TEST(BinaryGrad, HeadsScaleAlphaOperand) {
  util::Rng rng(22);
  auto x = Tensor::randn({5, 6}, rng);
  auto alpha = Tensor::randn({5, 3}, rng);
  expect_gradient_matches(
      alpha, [&] { return ops::mean(ops::heads_scale(x, alpha, 3)); });
}

TEST(ConvGrad, Conv1dAllOperands) {
  util::Rng rng(23);
  auto x = Tensor::randn({2, 9}, rng);     // [C_in=2, L=9]
  auto w = Tensor::randn({3, 6}, rng);     // [C_out=3, C_in*K=2*3]
  auto b = Tensor::randn({3}, rng);
  auto loss = [&] {
    return ops::mean(ops::conv1d(x, w, b, /*kernel=*/3, /*stride=*/2));
  };
  expect_gradient_matches(x, loss);
  expect_gradient_matches(w, loss);
  expect_gradient_matches(b, loss);
}

TEST(ConvGrad, MaxPool1d) {
  util::Rng rng(24);
  auto x = Tensor::randn({3, 8}, rng);
  expect_gradient_matches(
      x, [&] { return ops::mean(ops::max_pool1d(x, 2, 2)); });
}

TEST(DropoutGrad, MaskIsRespected) {
  // Fixed seed -> same mask on analytic and (per-element) numeric passes is
  // not guaranteed, so check the identity property instead: in eval mode the
  // gradient is exactly the upstream gradient.
  util::Rng rng(25);
  auto x = Tensor::randn({4, 4}, rng);
  expect_gradient_matches(x, [&] {
    util::Rng r2(99);
    return ops::mean(ops::dropout(x, 0.5, /*training=*/false, r2));
  });
}

}  // namespace
}  // namespace amdgcnn::ag
