// Forward-value and property tests for segment (message-passing) and
// DGCNN-head (sort-pool / conv1d / max-pool) operations.
#include <gtest/gtest.h>

#include <algorithm>

#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"
#include "util/rng.h"

namespace amdgcnn::ag {
namespace {

TEST(ScatterAdd, AccumulatesDuplicateTargets) {
  auto src = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6});
  auto out = ops::scatter_add_rows(src, {1, 1, 0}, 3);
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{5, 6, 4, 6, 0, 0}));
}

TEST(ScatterAdd, ValidatesIndices) {
  auto src = Tensor::from_data({2, 1}, {1, 2});
  EXPECT_THROW(ops::scatter_add_rows(src, {0, 3}, 2), std::invalid_argument);
  EXPECT_THROW(ops::scatter_add_rows(src, {0}, 2), std::invalid_argument);
}

TEST(SegmentSoftmax, RowsOfEachSegmentSumToOne) {
  util::Rng rng(5);
  auto scores = Tensor::randn({7, 3}, rng);
  std::vector<std::int64_t> seg = {0, 1, 0, 2, 1, 2, 2};
  auto alpha = ops::segment_softmax(scores, seg, 3);
  std::vector<double> colsum(9, 0.0);
  for (int e = 0; e < 7; ++e)
    for (int h = 0; h < 3; ++h) colsum[seg[e] * 3 + h] += alpha.at(e, h);
  for (double s : colsum) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(SegmentSoftmax, SingletonSegmentGetsWeightOne) {
  auto scores = Tensor::from_data({1, 2}, {5.0, -3.0});
  auto alpha = ops::segment_softmax(scores, {0}, 1);
  EXPECT_NEAR(alpha.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(alpha.at(0, 1), 1.0, 1e-12);
}

TEST(SegmentSoftmax, MatchesDenseSoftmaxWithinSegment) {
  auto scores = Tensor::from_data({3, 1}, {1.0, 2.0, 3.0});
  auto alpha = ops::segment_softmax(scores, {0, 0, 0}, 1);
  auto dense = ops::softmax_rows(ops::transpose(scores));
  EXPECT_NEAR(alpha.at(0, 0), dense.at(0, 0), 1e-12);
  EXPECT_NEAR(alpha.at(1, 0), dense.at(0, 1), 1e-12);
  EXPECT_NEAR(alpha.at(2, 0), dense.at(0, 2), 1e-12);
}

TEST(SegmentSoftmax, NumericallyStableOnLargeScores) {
  auto scores = Tensor::from_data({2, 1}, {1000.0, 999.0});
  auto alpha = ops::segment_softmax(scores, {0, 0}, 1);
  EXPECT_NEAR(alpha.at(0, 0) + alpha.at(1, 0), 1.0, 1e-12);
  EXPECT_GT(alpha.at(0, 0), alpha.at(1, 0));
}

TEST(SortPool, SortsDescendingByLastColumn) {
  auto x = Tensor::from_data({3, 2}, {10, 0.1, 20, 0.9, 30, 0.5});
  auto out = ops::sort_pool(x, 3);
  // Sorted by last column: rows (20,0.9), (30,0.5), (10,0.1).
  EXPECT_EQ(out.data(), (std::vector<double>{20, 0.9, 30, 0.5, 10, 0.1}));
}

TEST(SortPool, PadsSmallGraphsWithZeros) {
  auto x = Tensor::from_data({2, 2}, {1, 5, 2, 6});
  auto out = ops::sort_pool(x, 4);
  EXPECT_EQ(out.shape(), (Shape{4, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{2, 6, 1, 5, 0, 0, 0, 0}));
}

TEST(SortPool, TruncatesLargeGraphs) {
  auto x = Tensor::from_data({4, 1}, {3, 1, 4, 2});
  auto out = ops::sort_pool(x, 2);
  EXPECT_EQ(out.data(), (std::vector<double>{4, 3}));
}

TEST(SortPool, TieBrokenByEarlierColumns) {
  auto x = Tensor::from_data({2, 2}, {1, 7, 2, 7});
  auto out = ops::sort_pool(x, 2);
  // Last column ties at 7; first column decides (2 > 1).
  EXPECT_EQ(out.data(), (std::vector<double>{2, 7, 1, 7}));
}

TEST(SortPool, PermutationInvariant) {
  util::Rng rng(11);
  auto x = Tensor::randn({6, 3}, rng);
  auto shuffled_data = x.data();
  // Rotate rows by 2.
  std::rotate(shuffled_data.begin(), shuffled_data.begin() + 2 * 3,
              shuffled_data.end());
  auto y = Tensor::from_data({6, 3}, shuffled_data);
  EXPECT_EQ(ops::sort_pool(x, 4).data(), ops::sort_pool(y, 4).data());
}

TEST(Conv1d, KnownValues) {
  // 1 input channel, kernel 2, stride 1, weight [1 -1], bias 0.5.
  auto x = Tensor::from_data({1, 4}, {1, 3, 2, 5});
  auto w = Tensor::from_data({1, 2}, {1, -1});
  auto b = Tensor::from_data({1}, {0.5});
  auto out = ops::conv1d(x, w, b, 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 3}));
  EXPECT_EQ(out.data(), (std::vector<double>{-1.5, 1.5, -2.5}));
}

TEST(Conv1d, StrideAndMultiChannel) {
  auto x = Tensor::from_data({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  // C_out=1, kernel=2: weight sums both channels' windows.
  auto w = Tensor::ones({1, 4});
  auto out = ops::conv1d(x, w, Tensor(), 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{33, 77}));
}

TEST(Conv1d, RejectsBadShapes) {
  auto x = Tensor::from_data({1, 3}, {1, 2, 3});
  auto w = Tensor::ones({1, 2});
  EXPECT_THROW(ops::conv1d(x, Tensor::ones({1, 3}), Tensor(), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(ops::conv1d(x, w, Tensor::ones({2}), 2, 1),
               std::invalid_argument);
  auto short_x = Tensor::from_data({1, 1}, {1});
  EXPECT_THROW(ops::conv1d(short_x, w, Tensor(), 2, 1),
               std::invalid_argument);
}

TEST(MaxPool1d, KnownValues) {
  auto x = Tensor::from_data({2, 4}, {1, 5, 2, 3, 9, 0, 4, 4});
  auto out = ops::max_pool1d(x, 2, 2);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{5, 3, 9, 4}));
}

TEST(MaxPool1d, OverlappingWindows) {
  auto x = Tensor::from_data({1, 4}, {1, 5, 2, 3});
  auto out = ops::max_pool1d(x, 2, 1);
  EXPECT_EQ(out.data(), (std::vector<double>{5, 5, 3}));
}

TEST(DgcnnHeadPipeline, ShapesComposeForMinimumK) {
  // k=10, C=5 embedding channels: reshape -> conv(kernel=C, stride=C) ->
  // pool(2,2) -> conv(kernel 5): the minimal legal DGCNN head.
  util::Rng rng(13);
  auto z = Tensor::randn({7, 5}, rng);
  auto pooled = ops::sort_pool(z, 10);
  auto seq = ops::reshape(pooled, {1, 50});
  auto w1 = Tensor::randn({16, 5}, rng);
  auto c1 = ops::conv1d(seq, w1, Tensor(), 5, 5);
  EXPECT_EQ(c1.shape(), (Shape{16, 10}));
  auto p = ops::max_pool1d(c1, 2, 2);
  EXPECT_EQ(p.shape(), (Shape{16, 5}));
  auto w2 = Tensor::randn({32, 16 * 5}, rng);
  auto c2 = ops::conv1d(p, w2, Tensor(), 5, 1);
  EXPECT_EQ(c2.shape(), (Shape{32, 1}));
}

}  // namespace
}  // namespace amdgcnn::ag
