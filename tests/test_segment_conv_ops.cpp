// Forward-value and property tests for segment (message-passing) and
// DGCNN-head (sort-pool / conv1d / max-pool) operations.
#include <gtest/gtest.h>

#include <algorithm>

#include "tensor/conv_ops.h"
#include "tensor/ops.h"
#include "tensor/segment_ops.h"
#include "util/rng.h"

namespace amdgcnn::ag {
namespace {

TEST(ScatterAdd, AccumulatesDuplicateTargets) {
  auto src = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6});
  auto out = ops::scatter_add_rows(src, {1, 1, 0}, 3);
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{5, 6, 4, 6, 0, 0}));
}

TEST(ScatterAdd, ValidatesIndices) {
  auto src = Tensor::from_data({2, 1}, {1, 2});
  EXPECT_THROW(ops::scatter_add_rows(src, {0, 3}, 2), std::invalid_argument);
  EXPECT_THROW(ops::scatter_add_rows(src, {0}, 2), std::invalid_argument);
}

TEST(SegmentSoftmax, RowsOfEachSegmentSumToOne) {
  util::Rng rng(5);
  auto scores = Tensor::randn({7, 3}, rng);
  std::vector<std::int64_t> seg = {0, 1, 0, 2, 1, 2, 2};
  auto alpha = ops::segment_softmax(scores, seg, 3);
  std::vector<double> colsum(9, 0.0);
  for (int e = 0; e < 7; ++e)
    for (int h = 0; h < 3; ++h) colsum[seg[e] * 3 + h] += alpha.at(e, h);
  for (double s : colsum) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(SegmentSoftmax, SingletonSegmentGetsWeightOne) {
  auto scores = Tensor::from_data({1, 2}, {5.0, -3.0});
  auto alpha = ops::segment_softmax(scores, {0}, 1);
  EXPECT_NEAR(alpha.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(alpha.at(0, 1), 1.0, 1e-12);
}

TEST(SegmentSoftmax, MatchesDenseSoftmaxWithinSegment) {
  auto scores = Tensor::from_data({3, 1}, {1.0, 2.0, 3.0});
  auto alpha = ops::segment_softmax(scores, {0, 0, 0}, 1);
  auto dense = ops::softmax_rows(ops::transpose(scores));
  EXPECT_NEAR(alpha.at(0, 0), dense.at(0, 0), 1e-12);
  EXPECT_NEAR(alpha.at(1, 0), dense.at(0, 1), 1e-12);
  EXPECT_NEAR(alpha.at(2, 0), dense.at(0, 2), 1e-12);
}

TEST(SegmentSoftmax, NumericallyStableOnLargeScores) {
  auto scores = Tensor::from_data({2, 1}, {1000.0, 999.0});
  auto alpha = ops::segment_softmax(scores, {0, 0}, 1);
  EXPECT_NEAR(alpha.at(0, 0) + alpha.at(1, 0), 1.0, 1e-12);
  EXPECT_GT(alpha.at(0, 0), alpha.at(1, 0));
}

TEST(SortPool, SortsDescendingByLastColumn) {
  auto x = Tensor::from_data({3, 2}, {10, 0.1, 20, 0.9, 30, 0.5});
  auto out = ops::sort_pool(x, 3);
  // Sorted by last column: rows (20,0.9), (30,0.5), (10,0.1).
  EXPECT_EQ(out.data(), (std::vector<double>{20, 0.9, 30, 0.5, 10, 0.1}));
}

TEST(SortPool, PadsSmallGraphsWithZeros) {
  auto x = Tensor::from_data({2, 2}, {1, 5, 2, 6});
  auto out = ops::sort_pool(x, 4);
  EXPECT_EQ(out.shape(), (Shape{4, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{2, 6, 1, 5, 0, 0, 0, 0}));
}

TEST(SortPool, TruncatesLargeGraphs) {
  auto x = Tensor::from_data({4, 1}, {3, 1, 4, 2});
  auto out = ops::sort_pool(x, 2);
  EXPECT_EQ(out.data(), (std::vector<double>{4, 3}));
}

TEST(SortPool, TieBrokenByEarlierColumns) {
  auto x = Tensor::from_data({2, 2}, {1, 7, 2, 7});
  auto out = ops::sort_pool(x, 2);
  // Last column ties at 7; first column decides (2 > 1).
  EXPECT_EQ(out.data(), (std::vector<double>{2, 7, 1, 7}));
}

TEST(SortPool, PermutationInvariant) {
  util::Rng rng(11);
  auto x = Tensor::randn({6, 3}, rng);
  auto shuffled_data = x.data();
  // Rotate rows by 2.
  std::rotate(shuffled_data.begin(), shuffled_data.begin() + 2 * 3,
              shuffled_data.end());
  auto y = Tensor::from_data({6, 3}, shuffled_data);
  EXPECT_EQ(ops::sort_pool(x, 4).data(), ops::sort_pool(y, 4).data());
}

// ---- sort_pool: nth_element path vs full-sort reference ---------------------

/// The pre-optimisation algorithm: full std::sort of all row indices.
/// Returns the permutation prefix the op must reproduce exactly.
std::vector<std::int64_t> reference_sort_perm(const Tensor& x,
                                              std::int64_t keep) {
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) perm[i] = i;
  const auto& d = x.data();
  std::sort(perm.begin(), perm.end(), [&](std::int64_t a, std::int64_t b) {
    for (std::int64_t col = c - 1; col >= 0; --col) {
      const double va = d[a * c + col], vb = d[b * c + col];
      if (va != vb) return va > vb;
    }
    return a < b;
  });
  perm.resize(static_cast<std::size_t>(keep));
  return perm;
}

/// Forward output and input gradient of sort_pool(x, k) under the loss
/// sum(sort_pool(x, k) * w), checked bit-for-bit against the full-sort
/// reference (forward rows copied from the reference permutation; gradient
/// rows of w scattered back through it).
void expect_matches_reference(const Tensor& input, std::int64_t k) {
  const std::int64_t n = input.dim(0), c = input.dim(1);
  const std::int64_t keep = std::min(n, k);
  const auto perm = reference_sort_perm(input, keep);

  Tensor x = Tensor::from_data(input.shape(), input.data()).requires_grad(true);
  // Distinct weights per output slot so a permutation mistake cannot cancel.
  std::vector<double> wdata(static_cast<std::size_t>(k * c));
  for (std::size_t i = 0; i < wdata.size(); ++i)
    wdata[i] = 0.25 * static_cast<double>(i + 1);
  auto w = Tensor::from_data({k, c}, wdata);

  auto out = ops::sort_pool(x, k);
  ASSERT_EQ(out.shape(), (Shape{k, c}));
  for (std::int64_t r = 0; r < keep; ++r)
    for (std::int64_t col = 0; col < c; ++col)
      ASSERT_EQ(out.at(r, col), input.at(perm[r], col))
          << "forward row " << r << " col " << col;
  for (std::int64_t r = keep; r < k; ++r)
    for (std::int64_t col = 0; col < c; ++col)
      ASSERT_EQ(out.at(r, col), 0.0) << "padding must be zero";

  auto loss = ops::sum(ops::mul(out, w));
  loss.backward();
  std::vector<double> expected_grad(static_cast<std::size_t>(n * c), 0.0);
  for (std::int64_t r = 0; r < keep; ++r)
    for (std::int64_t col = 0; col < c; ++col)
      expected_grad[perm[r] * c + col] += wdata[r * c + col];
  ASSERT_EQ(x.grad().size(), expected_grad.size());
  for (std::size_t i = 0; i < expected_grad.size(); ++i)
    ASSERT_EQ(x.grad()[i], expected_grad[i]) << "gradient flat index " << i;
}

TEST(SortPoolEquivalence, RandomInputsMatchFullSortPath) {
  util::Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t n = 3 + static_cast<std::int64_t>(
                                   rng.uniform_int(std::uint64_t{40}));
    const std::int64_t c = 1 + static_cast<std::int64_t>(
                                   rng.uniform_int(std::uint64_t{5}));
    auto x = Tensor::randn({n, c}, rng);
    for (std::int64_t k : {std::int64_t{1}, n / 2 + 1, n, n + 7})
      expect_matches_reference(x, k);
  }
}

TEST(SortPoolEquivalence, TieHeavyInputsMatchFullSortPath) {
  // Values drawn from {0, 1}: most comparisons fall through to earlier
  // columns or the index tie-break, the regime where a selection algorithm
  // could diverge from the full sort if the comparator were not total.
  util::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t n = 6 + static_cast<std::int64_t>(
                                   rng.uniform_int(std::uint64_t{30}));
    const std::int64_t c = 1 + static_cast<std::int64_t>(
                                   rng.uniform_int(std::uint64_t{3}));
    std::vector<double> data(static_cast<std::size_t>(n * c));
    for (auto& v : data)
      v = static_cast<double>(rng.uniform_int(std::uint64_t{2}));
    auto x = Tensor::from_data({n, c}, std::move(data));
    for (std::int64_t k : {std::int64_t{2}, n / 3 + 1, n - 1, n})
      expect_matches_reference(x, k);
  }
}

TEST(SortPoolEquivalence, AllRowsIdenticalFallsBackToIndexOrder) {
  auto x = Tensor::from_data({5, 2}, std::vector<double>(10, 3.5));
  expect_matches_reference(x, 3);
  expect_matches_reference(x, 5);
}

TEST(Conv1d, KnownValues) {
  // 1 input channel, kernel 2, stride 1, weight [1 -1], bias 0.5.
  auto x = Tensor::from_data({1, 4}, {1, 3, 2, 5});
  auto w = Tensor::from_data({1, 2}, {1, -1});
  auto b = Tensor::from_data({1}, {0.5});
  auto out = ops::conv1d(x, w, b, 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 3}));
  EXPECT_EQ(out.data(), (std::vector<double>{-1.5, 1.5, -2.5}));
}

TEST(Conv1d, StrideAndMultiChannel) {
  auto x = Tensor::from_data({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  // C_out=1, kernel=2: weight sums both channels' windows.
  auto w = Tensor::ones({1, 4});
  auto out = ops::conv1d(x, w, Tensor(), 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{33, 77}));
}

TEST(Conv1d, RejectsBadShapes) {
  auto x = Tensor::from_data({1, 3}, {1, 2, 3});
  auto w = Tensor::ones({1, 2});
  EXPECT_THROW(ops::conv1d(x, Tensor::ones({1, 3}), Tensor(), 2, 1),
               std::invalid_argument);
  EXPECT_THROW(ops::conv1d(x, w, Tensor::ones({2}), 2, 1),
               std::invalid_argument);
  auto short_x = Tensor::from_data({1, 1}, {1});
  EXPECT_THROW(ops::conv1d(short_x, w, Tensor(), 2, 1),
               std::invalid_argument);
}

TEST(MaxPool1d, KnownValues) {
  auto x = Tensor::from_data({2, 4}, {1, 5, 2, 3, 9, 0, 4, 4});
  auto out = ops::max_pool1d(x, 2, 2);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_EQ(out.data(), (std::vector<double>{5, 3, 9, 4}));
}

TEST(MaxPool1d, OverlappingWindows) {
  auto x = Tensor::from_data({1, 4}, {1, 5, 2, 3});
  auto out = ops::max_pool1d(x, 2, 1);
  EXPECT_EQ(out.data(), (std::vector<double>{5, 5, 3}));
}

TEST(DgcnnHeadPipeline, ShapesComposeForMinimumK) {
  // k=10, C=5 embedding channels: reshape -> conv(kernel=C, stride=C) ->
  // pool(2,2) -> conv(kernel 5): the minimal legal DGCNN head.
  util::Rng rng(13);
  auto z = Tensor::randn({7, 5}, rng);
  auto pooled = ops::sort_pool(z, 10);
  auto seq = ops::reshape(pooled, {1, 50});
  auto w1 = Tensor::randn({16, 5}, rng);
  auto c1 = ops::conv1d(seq, w1, Tensor(), 5, 5);
  EXPECT_EQ(c1.shape(), (Shape{16, 10}));
  auto p = ops::max_pool1d(c1, 2, 2);
  EXPECT_EQ(p.shape(), (Shape{16, 5}));
  auto w2 = Tensor::randn({32, 16 * 5}, rng);
  auto c2 = ops::conv1d(p, w2, Tensor(), 5, 1);
  EXPECT_EQ(c2.shape(), (Shape{32, 1}));
}

}  // namespace
}  // namespace amdgcnn::ag
