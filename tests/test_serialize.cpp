// Weight save/load round-trip tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "models/dgcnn.h"
#include "models/serialize.h"
#include "nn/mlp.h"

namespace amdgcnn::models {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

seal::SubgraphSample probe_sample() {
  seal::SubgraphSample s;
  s.num_nodes = 3;
  s.label = 0;
  s.node_feat = ag::Tensor::from_data({3, 4}, {1, 0, 0, 0, 0, 1, 0, 0,
                                               0, 0, 1, 0});
  s.src = {0, 1, 1, 2};
  s.dst = {1, 0, 2, 1};
  s.edge_attr = ag::Tensor::from_data({4, 2}, {1, 0, 1, 0, 0, 1, 0, 1});
  return s;
}

ModelConfig probe_config() {
  ModelConfig mc;
  mc.kind = GnnKind::kAMDGCNN;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 3;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dropout = 0.0;
  return mc;
}

TEST(Serialize, RoundTripReproducesPredictions) {
  const auto path = temp_path("amdgcnn_roundtrip.bin");
  util::Rng rng_a(1), rng_b(2);
  DGCNN original(probe_config(), rng_a);
  DGCNN restored(probe_config(), rng_b);  // different init

  const auto sample = probe_sample();
  util::Rng fwd(3);
  original.set_training(false);
  restored.set_training(false);
  const auto before = restored.forward(sample, fwd);
  const auto target = original.forward(sample, fwd);
  // Different inits -> different outputs (sanity).
  bool differs = false;
  for (std::int64_t i = 0; i < 3; ++i)
    differs = differs || before.item(i) != target.item(i);
  ASSERT_TRUE(differs);

  save_weights(original, path);
  load_weights(restored, path);
  const auto after = restored.forward(sample, fwd);
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(after.item(i), target.item(i));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  const auto path = temp_path("amdgcnn_mismatch.bin");
  util::Rng rng(4);
  DGCNN model(probe_config(), rng);
  save_weights(model, path);

  auto other_cfg = probe_config();
  other_cfg.hidden_dim = 16;
  DGCNN other(other_cfg, rng);
  EXPECT_THROW(load_weights(other, path), std::runtime_error);

  nn::MLP mlp({4, 8, 3}, 0.0, rng);
  EXPECT_THROW(load_weights(mlp, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptFiles) {
  const auto path = temp_path("amdgcnn_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a weights file";
  }
  util::Rng rng(5);
  nn::MLP mlp({2, 2}, 0.0, rng);
  EXPECT_THROW(load_weights(mlp, path), std::runtime_error);
  EXPECT_THROW(load_weights(mlp, temp_path("missing_dir_xyz/nofile.bin")),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileDetected) {
  const auto path = temp_path("amdgcnn_trunc.bin");
  util::Rng rng(6);
  nn::MLP mlp({4, 4, 2}, 0.0, rng);
  save_weights(mlp, path);
  // Truncate the file to half size.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_weights(mlp, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amdgcnn::models
