// Dynamic-graph layer tests (DESIGN.md §2.5): the DeltaOverlay mutation
// API, compaction, generation counters, and the serving-side score cache.
//
// Three headline invariants, each driven by the seeded update-sequence
// generator in test_util.h (200+ randomized trials apiece; a failing trial
// replays from the seed in the assertion message):
//   (1) Static-vs-incremental equivalence — a graph grown through
//       insert_edge/delete_edge (with or without compact()) yields SEAL
//       datasets byte-identical to the same logical graph built through the
//       pristine add_edge + finalize path.
//   (2) Overlay/compaction identity — adjacency, DRNL labels and extracted
//       samples are invariant to WHEN compact() runs along an update
//       sequence.
//   (3) Cache coherence — with cache_scores on, predict_links output is
//       bitwise equal to the cold path under randomized interleavings of
//       mutations, queries, compactions and cache clears.
//
// Plus the negative-path pack (typed GraphUpdateError for every mutation
// precondition) and thread-invariance of build_samples / predict_links over
// overlay graphs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/link_predictor.h"
#include "core/seal_link_classifier.h"
#include "datasets/kg_generator.h"
#include "datasets/wordnet_sim.h"
#include "graph/graph_types.h"
#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "seal/dataset.h"
#include "seal/drnl.h"
#include "test_util.h"
#include "util/parallel_error.h"

namespace amdgcnn {
namespace {

using graph::GraphUpdateError;
using testing::apply_update;
using testing::apply_updates;
using testing::expect_samples_identical;
using testing::make_update_sequence;
using testing::random_kg_options;
using testing::random_links;
using testing::rebuild_via_finalize;
using testing::GraphUpdate;
using testing::UpdateSequenceOptions;

GraphUpdateError::Kind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const GraphUpdateError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected GraphUpdateError";
  return GraphUpdateError::Kind::kNotFinalized;
}

// ---- Negative paths: every mutation precondition raises a typed error ------

TEST(GraphMutationErrors, MutationBeforeFinalizeIsRejected) {
  graph::KnowledgeGraph g(1, 1);
  g.add_node(0);
  g.add_node(0);
  EXPECT_EQ(kind_of([&] { g.insert_edge(0, 1, 0); }),
            GraphUpdateError::Kind::kNotFinalized);
  EXPECT_EQ(kind_of([&] { g.delete_edge(0, 1); }),
            GraphUpdateError::Kind::kNotFinalized);
  EXPECT_EQ(kind_of([&] { g.compact(); }),
            GraphUpdateError::Kind::kNotFinalized);
}

TEST(GraphMutationErrors, DuplicateInsertIsRejected) {
  auto g = testing::path_graph(4);  // 0-1-2-3
  EXPECT_EQ(kind_of([&] { g.insert_edge(0, 1, 0); }),
            GraphUpdateError::Kind::kDuplicateEdge);
  // Orientation does not matter (undirected).
  EXPECT_EQ(kind_of([&] { g.insert_edge(1, 0, 0); }),
            GraphUpdateError::Kind::kDuplicateEdge);
  // Duplicates of OVERLAY edges are rejected too, not just base edges.
  g.insert_edge(0, 3, 0);
  EXPECT_EQ(kind_of([&] { g.insert_edge(3, 0, 0); }),
            GraphUpdateError::Kind::kDuplicateEdge);
}

TEST(GraphMutationErrors, RemovingNonexistentEdgeIsRejected) {
  auto g = testing::path_graph(4);
  EXPECT_EQ(kind_of([&] { g.delete_edge(0, 3); }),
            GraphUpdateError::Kind::kMissingEdge);
  // Deleting twice: the second delete sees a missing edge.
  g.delete_edge(0, 1);
  EXPECT_EQ(kind_of([&] { g.delete_edge(0, 1); }),
            GraphUpdateError::Kind::kMissingEdge);
}

TEST(GraphMutationErrors, OutOfRangeIdsAreRejected) {
  auto g = testing::path_graph(4);
  EXPECT_EQ(kind_of([&] { g.insert_edge(-1, 2, 0); }),
            GraphUpdateError::Kind::kNodeOutOfRange);
  EXPECT_EQ(kind_of([&] { g.insert_edge(0, 4, 0); }),
            GraphUpdateError::Kind::kNodeOutOfRange);
  EXPECT_EQ(kind_of([&] { g.delete_edge(0, 99); }),
            GraphUpdateError::Kind::kNodeOutOfRange);
  EXPECT_EQ(kind_of([&] { g.insert_edge(2, 2, 0); }),
            GraphUpdateError::Kind::kSelfLoop);
  EXPECT_EQ(kind_of([&] { g.insert_edge(0, 3, 1); }),
            GraphUpdateError::Kind::kTypeOutOfRange);
  EXPECT_EQ(kind_of([&] { g.insert_edge(0, 3, -1); }),
            GraphUpdateError::Kind::kTypeOutOfRange);
}

TEST(GraphMutationErrors, AttrDimMismatchIsRejectedBeforeMutating) {
  graph::KnowledgeGraph g(1, 2, /*edge_attr_dim=*/3);
  g.add_node(0);
  g.add_node(0);
  g.add_node(0);
  g.add_edge(0, 1, 0);
  const double attr3[] = {1.0, 0.0, 0.0};
  g.set_edge_type_attr(0, attr3);
  g.set_edge_type_attr(1, attr3);
  g.finalize();

  const std::uint64_t gen = g.generation();
  const double attr2[] = {1.0, 0.0};
  EXPECT_EQ(kind_of([&] { g.insert_edge(1, 2, 1, attr2); }),
            GraphUpdateError::Kind::kAttrDimMismatch);
  // The failed insert must not have mutated anything: no edge, no
  // generation bump, no overlay depth.
  EXPECT_EQ(g.generation(), gen);
  EXPECT_EQ(g.overlay_depth(), 0);
  EXPECT_FALSE(g.has_edge(1, 2));
}

// ---- Overlay semantics: visibility, counters, compaction -------------------

TEST(DeltaOverlay, InsertAndDeleteAreImmediatelyVisible) {
  auto g = testing::path_graph(5);
  ASSERT_FALSE(g.has_edge(0, 4));
  const auto e = g.insert_edge(0, 4, 0);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_EQ(g.find_edge(4, 0), e);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.edge(e).src, 0);
  EXPECT_EQ(g.edge(e).dst, 4);

  EXPECT_EQ(g.delete_edge(1, 2), 1);  // base edge 1 is 1-2
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.edge_removed(1));
  EXPECT_EQ(g.degree(1), 1);
  // Tombstoned records stay readable until compact().
  EXPECT_EQ(g.edge(1).src, 1);
  EXPECT_EQ(g.num_edges(), 5);       // 4 base records + 1 overlay insert
  EXPECT_EQ(g.num_live_edges(), 4);  // one of them tombstoned
  EXPECT_EQ(g.overlay_depth(), 2);
}

TEST(DeltaOverlay, GenerationCountersStampTouchedEndpointsOnly) {
  auto g = testing::path_graph(5);
  EXPECT_EQ(g.generation(), 0u);
  for (graph::NodeId v = 0; v < 5; ++v)
    EXPECT_EQ(g.node_generation(v), 0u);

  g.insert_edge(0, 4, 0);
  EXPECT_EQ(g.generation(), 1u);
  EXPECT_EQ(g.node_generation(0), 1u);
  EXPECT_EQ(g.node_generation(4), 1u);
  EXPECT_EQ(g.node_generation(2), 0u);

  g.delete_edge(2, 3);
  EXPECT_EQ(g.generation(), 2u);
  EXPECT_EQ(g.node_generation(2), 2u);
  EXPECT_EQ(g.node_generation(3), 2u);
  EXPECT_EQ(g.node_generation(0), 1u);
}

TEST(DeltaOverlay, CompactFoldsOverlayAndPreservesGenerations) {
  auto g = testing::path_graph(5);
  g.insert_edge(0, 4, 0);
  g.delete_edge(1, 2);
  const auto gen = g.generation();

  g.compact();
  EXPECT_EQ(g.overlay_depth(), 0);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.num_live_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(1, 2));
  // compact() changes no logical state: generation counters survive, so no
  // downstream cache is invalidated.
  EXPECT_EQ(g.generation(), gen);
  EXPECT_EQ(g.node_generation(0), 1u);
  EXPECT_EQ(g.node_generation(2), 2u);
  // A compacted graph accepts further updates.
  g.insert_edge(1, 2, 0);
  EXPECT_EQ(g.generation(), gen + 1);
}

// ---- Invariant (1): static-vs-incremental equivalence ----------------------

seal::SealDatasetOptions small_seal_options(std::int64_t num_threads = 0) {
  seal::SealDatasetOptions o;
  o.extract.num_hops = 2;
  o.extract.max_nodes = 24;
  o.features.max_drnl_label = 16;
  o.num_threads = num_threads;
  return o;
}

TEST(DynamicGraphEquivalence, OverlayGraphBuildsIdenticalSealDatasets) {
  const auto opts = small_seal_options();
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    auto g = datasets::make_random_kg(random_kg_options(trial + 1));
    UpdateSequenceOptions uo;
    uo.count = 30;
    uo.seed = trial * 2 + 1;
    apply_updates(g, make_update_sequence(g, uo));
    if (trial % 3 == 1) g.compact();  // a third of trials query post-compact

    // Reference: the same logical graph through add_edge + finalize.
    const auto fresh = rebuild_via_finalize(g);
    ASSERT_EQ(fresh.num_edges(), g.num_live_edges()) << "trial " << trial;

    const auto links = random_links(g, 8, /*num_classes=*/3, trial + 77);
    expect_samples_identical(seal::build_samples(g, links, opts),
                             seal::build_samples(fresh, links, opts),
                             ("trial " + std::to_string(trial)).c_str());
  }
}

// ---- Invariant (2): compaction timing is unobservable ----------------------

/// Adjacency of v as id-free (neighbor, relation-type) pairs — edge ids are
/// renumbered by compact(), endpoints and types are not.
std::vector<std::pair<graph::NodeId, std::int32_t>> typed_adjacency(
    const graph::KnowledgeGraph& g, graph::NodeId v) {
  std::vector<std::pair<graph::NodeId, std::int32_t>> out;
  for (const auto& adj : g.neighbors(v))
    out.emplace_back(adj.node, g.edge(adj.edge).type);
  return out;
}

TEST(DynamicGraphCompaction, TimingOfCompactionIsUnobservable) {
  const auto opts = small_seal_options();
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    const auto base = datasets::make_random_kg(random_kg_options(trial + 501));
    UpdateSequenceOptions uo;
    uo.count = 24;
    uo.seed = trial * 2 + 9;
    const auto seq = make_update_sequence(base, uo);

    // Never-compacted reference vs compaction after `cut` updates.
    auto never = base;
    apply_updates(never, seq);
    const auto links = random_links(never, 6, /*num_classes=*/3, trial + 33);
    const auto want = seal::build_samples(never, links, opts);

    for (const std::size_t cut : {std::size_t{0}, seq.size() / 2,
                                  seq.size()}) {
      auto g = base;
      for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i == cut) g.compact();
        apply_update(g, seq[i]);
      }
      if (cut == seq.size()) g.compact();

      const auto tag = "trial " + std::to_string(trial) + " cut " +
                       std::to_string(cut);
      // Neighbor sequences are byte-identical up to edge-id renumbering.
      for (graph::NodeId v = 0;
           v < static_cast<graph::NodeId>(g.num_nodes()); ++v)
        ASSERT_EQ(typed_adjacency(g, v), typed_adjacency(never, v))
            << tag << " node " << v;
      // ... so DRNL labels and full sample bytes are too.
      for (const auto& link : links) {
        graph::ExtractOptions eo = opts.extract;
        const auto sub = graph::extract_enclosing_subgraph(g, link.a, link.b,
                                                           eo);
        const auto ref = graph::extract_enclosing_subgraph(never, link.a,
                                                           link.b, eo);
        ASSERT_EQ(sub.nodes, ref.nodes) << tag;
        ASSERT_EQ(seal::drnl_labels(sub), seal::drnl_labels(ref)) << tag;
      }
      expect_samples_identical(seal::build_samples(g, links, opts), want,
                               tag.c_str());
    }
  }
}

// ---- Trained-classifier fixture for the serving-side tests -----------------

struct ServingFixture {
  datasets::LinkDataset data;
  core::ClassifierConfig cfg;
  std::unique_ptr<core::SealLinkClassifier> clf;

  ServingFixture() {
    datasets::WordNetSimOptions o;
    o.num_nodes = 200;
    o.num_train = 40;
    o.num_test = 15;
    o.mean_degree = 5.0;
    data = datasets::make_wordnet_sim(o);

    cfg.model.kind = models::GnnKind::kAMDGCNN;
    cfg.model.hidden_dim = 8;
    cfg.model.heads = 2;
    cfg.model.num_layers = 2;
    cfg.model.sort_k = 10;
    cfg.training.epochs = 1;
    cfg.dataset.extract.max_nodes = 24;
    cfg.dataset.features.max_drnl_label = 16;
    clf = std::make_unique<core::SealLinkClassifier>(cfg);
    clf->fit(data.graph, data.train_links, data.num_classes);
  }

  core::LinkPredictor predictor(bool cache, std::int64_t threads = 0) const {
    core::LinkPredictor::Options po;
    po.dataset = cfg.dataset;
    po.dataset.num_threads = threads;
    po.cache_scores = cache;
    return core::LinkPredictor(clf->model(), po);
  }
};

void expect_proba_bitwise_equal(const core::LinkPredictions& got,
                                const core::LinkPredictions& want,
                                const std::string& tag) {
  ASSERT_EQ(got.proba.size(), want.proba.size()) << tag;
  ASSERT_EQ(0, std::memcmp(got.proba.data(), want.proba.data(),
                           want.proba.size() * sizeof(double)))
      << tag;
  ASSERT_EQ(got.labels, want.labels) << tag;
}

// ---- Invariant (3): cache coherence ----------------------------------------

TEST(DynamicGraphCache, CachedScoresAlwaysEqualColdPath) {
  ServingFixture fx;
  auto g = fx.data.graph;  // mutable serving copy
  const auto cached = fx.predictor(/*cache=*/true);
  const auto cold = fx.predictor(/*cache=*/false);

  util::Rng rng(4242);
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  for (int step = 0; step < 200; ++step) {
    // Random interleaving: 0-2 mutations, sometimes a compaction or a cache
    // wipe, then a small randomized query batch (overlapping batches drive
    // the hit path; mutations drive invalidation).
    const auto muts = rng.uniform_int(3);
    for (std::uint64_t k = 0; k < muts; ++k) {
      const auto a = static_cast<graph::NodeId>(rng.uniform_int(n));
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (a == b) continue;
      try {
        if (rng.uniform() < 0.5 && g.has_edge(a, b))
          g.delete_edge(a, b);
        else if (!g.has_edge(a, b))
          g.insert_edge(a, b, static_cast<std::int32_t>(rng.uniform_int(
                                  static_cast<std::uint64_t>(
                                      g.num_edge_types()))));
      } catch (const GraphUpdateError&) {
        ADD_FAILURE() << "valid mutation raised at step " << step;
      }
    }
    if (step % 17 == 5) g.compact();
    if (step % 41 == 7) cached.clear_cache();

    const auto links =
        random_links(g, 6, fx.data.num_classes,
                     /*seed=*/1000 + static_cast<std::uint64_t>(step) % 5);
    expect_proba_bitwise_equal(cached.predict_links(g, links),
                               cold.predict_links(g, links),
                               "step " + std::to_string(step));
  }
  // The interleaving must have exercised all three cache paths, or the
  // property above proved nothing.
  EXPECT_GT(cached.cache_stats().hits, 0);
  EXPECT_GT(cached.cache_stats().misses, 0);
  EXPECT_GT(cached.cache_stats().invalidated, 0);
}

TEST(DynamicGraphCache, RepeatQueryHitsWithoutMutationAndMissesAfterTouch) {
  ServingFixture fx;
  auto g = fx.data.graph;
  const auto cached = fx.predictor(/*cache=*/true);
  const auto links = random_links(g, 5, fx.data.num_classes, 7);

  const auto first = cached.predict_links(g, links);
  EXPECT_EQ(cached.cache_stats().hits, 0);
  EXPECT_EQ(cached.cache_stats().misses, 5);

  // No mutation: pure hits, bit-identical.
  const auto second = cached.predict_links(g, links);
  expect_proba_bitwise_equal(second, first, "repeat");
  EXPECT_EQ(cached.cache_stats().hits, 5);

  // compact() must not evict (generations are preserved).
  g.compact();
  cached.predict_links(g, links);
  EXPECT_EQ(cached.cache_stats().hits, 10);
  EXPECT_EQ(cached.cache_stats().invalidated, 0);

  // Touching a queried endpoint invalidates the entries whose hull contains
  // it (links[0].a is in its own hull by construction).
  graph::NodeId other = -1;
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
       ++v)
    if (v != links[0].a && !g.has_edge(links[0].a, v)) {
      other = v;
      break;
    }
  ASSERT_GE(other, 0);
  g.insert_edge(links[0].a, other, 0);
  cached.predict_links(g, links);
  EXPECT_GT(cached.cache_stats().invalidated, 0);
}

TEST(DynamicGraphCache, SwitchingServingGraphResetsEntries) {
  ServingFixture fx;
  auto g1 = fx.data.graph;
  auto g2 = fx.data.graph;
  const auto cached = fx.predictor(/*cache=*/true);
  const auto links = random_links(g1, 4, fx.data.num_classes, 9);

  cached.predict_links(g1, links);
  EXPECT_EQ(cached.cache_size(), 4u);
  // A different graph instance may have diverged: nothing cached applies.
  cached.predict_links(g2, links);
  EXPECT_EQ(cached.cache_stats().hits, 0);
}

// A poisoned link in a parallel serving batch surfaces as util::WorkerError
// carrying the stage name and the lowest failing batch index — on both the
// cold and the cached scoring path (a fresh predictor makes every link a
// miss, so the cached path's item index equals the link index here).
TEST(DynamicGraphCache, PredictLinksWorkerFailureIsWorkerError) {
  ServingFixture fx;
  const auto& g = fx.data.graph;
  auto links = random_links(g, 8, fx.data.num_classes, 31);
  links[2].b = static_cast<graph::NodeId>(g.num_nodes() + 7);

  for (const bool cache : {false, true}) {
    const auto p = fx.predictor(cache, /*threads=*/4);
    try {
      p.predict_links(g, links);
      FAIL() << "expected util::WorkerError (cache=" << cache << ")";
    } catch (const util::WorkerError& e) {
      EXPECT_EQ(e.item(), 2);
      EXPECT_NE(std::string(e.what()).find("worker failed at item 2"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(cache ? "predict_links(cached)"
                                                 : "predict_links"),
                std::string::npos)
          << e.what();
    }
  }
}

// ---- Thread invariance over overlay graphs ---------------------------------

TEST(DynamicGraphThreads, BuildSamplesBitIdenticalOverOverlayGraph) {
  auto g = datasets::make_random_kg(random_kg_options(99));
  UpdateSequenceOptions uo;
  uo.count = 40;
  uo.seed = 5;
  apply_updates(g, make_update_sequence(g, uo));
  ASSERT_GT(g.overlay_depth(), 0);

  const auto links = random_links(g, 30, /*num_classes=*/3, 21);
  auto opts = small_seal_options(0);
  const auto serial = seal::build_samples(g, links, opts);
  for (std::int64_t nt : {1, 4}) {
    opts.num_threads = nt;
    expect_samples_identical(seal::build_samples(g, links, opts), serial,
                             ("num_threads=" + std::to_string(nt)).c_str());
  }
}

TEST(DynamicGraphThreads, PredictLinksBitIdenticalOverOverlayGraph) {
  ServingFixture fx;
  auto g = fx.data.graph;
  UpdateSequenceOptions uo;
  uo.count = 30;
  uo.seed = 3;
  apply_updates(g, make_update_sequence(g, uo));
  ASSERT_GT(g.overlay_depth(), 0);
  const auto links = random_links(g, 20, fx.data.num_classes, 13);

  for (const bool cache : {false, true}) {
    const auto serial = fx.predictor(cache, 0).predict_links(g, links);
    for (std::int64_t nt : {1, 4}) {
      const auto predictor = fx.predictor(cache, nt);
      // Two passes so the cached variant also serves its hit path under
      // OpenMP scheduling.
      predictor.predict_links(g, links);
      expect_proba_bitwise_equal(
          predictor.predict_links(g, links), serial,
          (cache ? std::string("cache ") : std::string("cold ")) +
              "num_threads=" + std::to_string(nt));
    }
  }
}

}  // namespace
}  // namespace amdgcnn
