// Heuristic link-scorer tests: exact values on toy graphs and the
// documented analytical properties of PageRank / Katz / SimRank.
#include <gtest/gtest.h>

#include <cmath>

#include "heuristics/katz.h"
#include "heuristics/local_scores.h"
#include "heuristics/pagerank.h"
#include "heuristics/scorer.h"
#include "heuristics/simrank.h"
#include "test_util.h"

namespace amdgcnn::heuristics {
namespace {

TEST(LocalScores, CommonNeighborsOnTriangle) {
  auto g = testing::triangle_with_tail();  // 0-1, 1-2, 0-2, 2-3
  EXPECT_DOUBLE_EQ(common_neighbors(g, 0, 1), 1.0);  // node 2
  EXPECT_DOUBLE_EQ(common_neighbors(g, 0, 3), 1.0);  // node 2
  EXPECT_DOUBLE_EQ(common_neighbors(g, 1, 3), 1.0);
  auto path = testing::path_graph(4);
  EXPECT_DOUBLE_EQ(common_neighbors(path, 0, 3), 0.0);
}

TEST(LocalScores, JaccardOnTriangle) {
  auto g = testing::triangle_with_tail();
  // N(0) = {1,2}, N(1) = {0,2}: intersection {2}, union {0,1,2} -> 1/3.
  EXPECT_NEAR(jaccard(g, 0, 1), 1.0 / 3.0, 1e-12);
  // Disjoint neighborhoods.
  auto path = testing::path_graph(5);
  EXPECT_DOUBLE_EQ(jaccard(path, 0, 4), 0.0);
}

TEST(LocalScores, AdamicAdarWeighsByInverseLogDegree) {
  auto g = testing::triangle_with_tail();
  // Common neighbor of (0,1) is node 2 with degree 3 -> 1/log 3.
  EXPECT_NEAR(adamic_adar(g, 0, 1), 1.0 / std::log(3.0), 1e-12);
  // Common neighbor of (1,3) is node 2 as well.
  EXPECT_NEAR(adamic_adar(g, 1, 3), 1.0 / std::log(3.0), 1e-12);
}

TEST(LocalScores, AdamicAdarSkipsDegreeOneNeighbors) {
  // Path 0-1-2: common neighbor 1 has degree 2 -> 1/log2; now a star where
  // the shared hub has degree exactly 1 cannot happen, but a degree-1 hub is
  // skipped (guard against log(1)=0 division).
  auto path = testing::path_graph(3);
  EXPECT_NEAR(adamic_adar(path, 0, 2), 1.0 / std::log(2.0), 1e-12);
}

TEST(LocalScores, PreferentialAttachment) {
  auto g = testing::triangle_with_tail();
  EXPECT_DOUBLE_EQ(preferential_attachment(g, 0, 2), 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(preferential_attachment(g, 3, 3), 1.0);
}

TEST(Katz, PathCountingOnPathGraph) {
  auto g = testing::path_graph(3);
  KatzOptions opts;
  opts.beta = 0.1;
  opts.max_length = 3;
  // Paths 0->1: length1 (1 path), length3 (0-1-0-1 and 0-1-2-1): beta +
  // 2 beta^3.
  EXPECT_NEAR(katz_index(g, 0, 1, opts), 0.1 + 2 * 0.001, 1e-12);
  // Paths 0->2: length 2 only (0-1-2) within length 3: beta^2.
  EXPECT_NEAR(katz_index(g, 0, 2, opts), 0.01, 1e-12);
}

TEST(Katz, SymmetricOnUndirectedGraphs) {
  auto g = testing::triangle_with_tail();
  for (graph::NodeId u = 0; u < 4; ++u)
    for (graph::NodeId v = 0; v < 4; ++v)
      EXPECT_NEAR(katz_index(g, u, v), katz_index(g, v, u), 1e-12);
}

TEST(Katz, ValidatesOptions) {
  auto g = testing::path_graph(3);
  KatzOptions bad;
  bad.beta = 1.5;
  EXPECT_THROW(katz_index(g, 0, 1, bad), std::invalid_argument);
  bad = KatzOptions{};
  bad.max_length = 0;
  EXPECT_THROW(katz_index(g, 0, 1, bad), std::invalid_argument);
}

TEST(PageRank, SumsToOneAndRanksHubsHigher) {
  auto g = testing::triangle_with_tail();
  auto pr = pagerank(g);
  double sum = 0.0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-8);
  // Node 2 (degree 3) outranks the pendant node 3.
  EXPECT_GT(pr[2], pr[3]);
  EXPECT_GT(pr[2], pr[0]);
}

TEST(PageRank, UniformOnRegularGraph) {
  // A 4-cycle is 2-regular: PageRank must be uniform.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  for (int i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4, 0);
  g.finalize();
  auto pr = pagerank(g);
  for (double v : pr) EXPECT_NEAR(v, 0.25, 1e-8);
}

TEST(PageRank, PersonalizedConcentratesAroundSource) {
  auto g = testing::path_graph(6);
  auto ppr = personalized_pagerank(g, 0);
  // The degree-1 source hands all mass to its neighbor, so ppr[1] may top
  // ppr[0]; the decay property holds from the neighbor outward.
  EXPECT_GT(ppr[1], ppr[3]);
  EXPECT_GT(ppr[3], ppr[5]);
  EXPECT_GT(ppr[0], ppr[5]);
}

TEST(PageRank, LinkScoreSymmetricAndHigherForCloserPairs) {
  auto g = testing::path_graph(6);
  EXPECT_NEAR(ppr_link_score(g, 0, 1), ppr_link_score(g, 1, 0), 1e-12);
  EXPECT_GT(ppr_link_score(g, 0, 1), ppr_link_score(g, 0, 5));
}

TEST(PageRank, ValidatesOptions) {
  auto g = testing::path_graph(3);
  PageRankOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(pagerank(g, bad), std::invalid_argument);
  EXPECT_THROW(personalized_pagerank(g, 9), std::invalid_argument);
}

TEST(SimRank, SelfSimilarityIsOneAndSymmetric) {
  auto g = testing::triangle_with_tail();
  auto sim = simrank(g);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_DOUBLE_EQ(sim[v * n + v], 1.0);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v)
      EXPECT_NEAR(sim[u * n + v], sim[v * n + u], 1e-12);
}

TEST(SimRank, StructurallyEquivalentNodesScoreHighest) {
  // Star: leaves 1..3 around hub 0 are structurally identical.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  for (int i = 1; i < 4; ++i) g.add_edge(0, i, 0);
  g.finalize();
  SimRankOptions opts;
  opts.iterations = 8;
  auto sim = simrank(g, opts);
  // Leaf-leaf similarity equals decay C (all their neighbors coincide).
  EXPECT_NEAR(sim[1 * 4 + 2], opts.decay, 1e-9);
  EXPECT_GT(sim[1 * 4 + 2], sim[0 * 4 + 1]);
}

TEST(SimRank, EnforcesSizeCap) {
  auto g = testing::path_graph(5);
  SimRankOptions opts;
  opts.max_nodes = 3;
  EXPECT_THROW(simrank(g, opts), std::invalid_argument);
}

TEST(ScorerSuite, StandardScorersSeparateEdgePairsOnCommunityGraph) {
  // Two dense cliques: real edges inside cliques should outrank random
  // cross pairs for neighborhood-based scorers.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 12; ++i) g.add_node(0);
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 6; ++i)
      for (int j = i + 1; j < 6; ++j)
        g.add_edge(c * 6 + i, c * 6 + j, 0);
  g.add_edge(0, 6, 0);  // one bridge
  g.finalize();

  std::vector<seal::LinkExample> links;
  for (int i = 0; i < 5; ++i) links.push_back({0, static_cast<graph::NodeId>(i + 1), 1});
  for (int i = 1; i < 6; ++i)
    links.push_back({static_cast<graph::NodeId>(i),
                     static_cast<graph::NodeId>(i + 6), 0});

  for (const auto& scorer : standard_scorers()) {
    if (scorer.name == "preferential-attachment") continue;  // degree-blind here
    const double auc = scorer_auc(scorer, g, links);
    EXPECT_GT(auc, 0.9) << scorer.name;
  }
  EXPECT_EQ(standard_scorers().size(), 5u);
}

}  // namespace
}  // namespace amdgcnn::heuristics
