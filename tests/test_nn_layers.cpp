// GNN layer tests: shapes, hand-computed message passing, attention
// normalisation, edge-attribute sensitivity, and end-to-end gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv1d.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/sort_pooling.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace amdgcnn::nn {
namespace {

TEST(ModuleBase, CollectsParametersRecursively) {
  util::Rng rng(1);
  MLP mlp({4, 8, 2}, 0.0, rng);
  // Two Linear layers: (4x8 + 8) + (8x2 + 2).
  EXPECT_EQ(mlp.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(mlp.parameters().size(), 4u);
  for (const auto& p : mlp.parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(ModuleBase, TrainingFlagPropagates) {
  util::Rng rng(1);
  MLP mlp({4, 8, 2}, 0.5, rng);
  EXPECT_TRUE(mlp.training());
  mlp.set_training(false);
  EXPECT_FALSE(mlp.training());
}

TEST(LinearLayer, ComputesAffineMap) {
  util::Rng rng(2);
  Linear lin(2, 3, /*bias=*/true, rng);
  auto x = ag::Tensor::from_data({2, 2}, {1, 0, 0, 1});
  auto y = lin.forward(x);
  EXPECT_EQ(y.shape(), (ag::Shape{2, 3}));
  // With identity input rows, output rows = weight rows + bias.
  Linear nobias(3, 2, /*bias=*/false, rng);
  EXPECT_EQ(nobias.parameters().size(), 1u);
}

TEST(GCNLayer, UniformFeaturesStayUniformOnRegularGraph) {
  // On a cycle (2-regular), symmetric-normalised propagation of constant
  // features keeps them constant: sum over edges+self of 1/3 = 1.
  util::Rng rng(3);
  GCNConv gcn(1, 1, rng);
  // Square cycle 0-1-2-3-0, both orientations.
  std::vector<std::int64_t> src = {0, 1, 1, 2, 2, 3, 3, 0};
  std::vector<std::int64_t> dst = {1, 0, 2, 1, 3, 2, 0, 3};
  auto x = ag::Tensor::ones({4, 1});
  auto out = gcn.forward(x, src, dst, 4);
  // out = w * 1 + bias for every node, identical across nodes.
  for (int i = 1; i < 4; ++i)
    EXPECT_NEAR(out.at(i, 0), out.at(0, 0), 1e-12);
}

TEST(GCNLayer, HandComputedTwoNodeGraph) {
  util::Rng rng(4);
  GCNConv gcn(1, 1, rng);
  const double w = gcn.parameters()[0].item(0);  // weight [1,1]
  // Nodes 0-1 connected; degrees (with self loop) = 2 each.
  std::vector<std::int64_t> src = {0, 1};
  std::vector<std::int64_t> dst = {1, 0};
  auto x = ag::Tensor::from_data({2, 1}, {1.0, 3.0});
  auto out = gcn.forward(x, src, dst, 2);
  // h0' = w*(x0/2 + x1/2), bias is zero-initialised.
  EXPECT_NEAR(out.at(0, 0), w * (0.5 * 1.0 + 0.5 * 3.0), 1e-12);
  EXPECT_NEAR(out.at(1, 0), w * (0.5 * 3.0 + 0.5 * 1.0), 1e-12);
}

TEST(GCNLayer, IsolatedNodeKeepsSelfLoopOnly) {
  util::Rng rng(5);
  GCNConv gcn(1, 1, rng);
  const double w = gcn.parameters()[0].item(0);
  auto x = ag::Tensor::from_data({1, 1}, {2.0});
  auto out = gcn.forward(x, {}, {}, 1);
  EXPECT_NEAR(out.at(0, 0), w * 2.0, 1e-12);
}

TEST(GCNLayer, RejectsShapeMismatch) {
  util::Rng rng(6);
  GCNConv gcn(2, 3, rng);
  auto x = ag::Tensor::ones({3, 2});
  EXPECT_THROW(gcn.forward(x, {0}, {}, 3), std::invalid_argument);
  EXPECT_THROW(gcn.forward(x, {0}, {1}, 2), std::invalid_argument);
}

TEST(GATLayer, OutputShapeIsHeadsTimesFeatures) {
  util::Rng rng(7);
  GATConv gat(5, 3, /*heads=*/4, /*edge_attr_dim=*/0, rng);
  EXPECT_EQ(gat.out_features(), 12);
  auto x = ag::Tensor::ones({3, 5});
  auto out = gat.forward(x, {0, 1}, {1, 0}, ag::Tensor(), 3);
  EXPECT_EQ(out.shape(), (ag::Shape{3, 12}));
}

TEST(GATLayer, EdgeAttributesChangeTheOutput) {
  util::Rng rng(8);
  GATConv gat(2, 4, 2, /*edge_attr_dim=*/2, rng);
  auto x = ag::Tensor::ones({3, 2});
  std::vector<std::int64_t> src = {0, 1, 1, 2};
  std::vector<std::int64_t> dst = {1, 0, 2, 1};
  auto ea1 = ag::Tensor::from_data({4, 2}, {1, 0, 1, 0, 1, 0, 1, 0});
  auto ea2 = ag::Tensor::from_data({4, 2}, {0, 1, 0, 1, 0, 1, 0, 1});
  auto out1 = gat.forward(x, src, dst, ea1, 3);
  auto out2 = gat.forward(x, src, dst, ea2, 3);
  double max_diff = 0.0;
  for (std::int64_t i = 0; i < out1.numel(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(out1.item(i) - out2.item(i)));
  EXPECT_GT(max_diff, 1e-6)
      << "edge attributes must reach the node embeddings";
}

TEST(GATLayer, GcnIsBlindToEdgeAttributesByConstruction) {
  // The contrast the whole paper rests on: same graph, different edge
  // attributes -> identical GCN output.
  util::Rng rng(9);
  GCNConv gcn(2, 4, rng);
  auto x = ag::Tensor::ones({3, 2});
  std::vector<std::int64_t> src = {0, 1};
  std::vector<std::int64_t> dst = {1, 2};
  auto out = gcn.forward(x, src, dst, 3);
  auto out2 = gcn.forward(x, src, dst, 3);
  EXPECT_EQ(out.data(), out2.data());
}

TEST(GATLayer, AttentionWeightsNormalisePerDestination) {
  // With identical inputs everywhere, the aggregated payload equals the
  // payload itself (convex combination of identical vectors).
  util::Rng rng(10);
  GATConv gat(3, 2, 2, 0, rng);
  auto x_same = ag::Tensor::ones({4, 3});
  std::vector<std::int64_t> src = {0, 1, 2, 3, 1, 2};
  std::vector<std::int64_t> dst = {1, 0, 1, 2, 3, 0};
  auto out = gat.forward(x_same, src, dst, ag::Tensor(), 4);
  // All nodes have identical inbound payloads -> identical outputs.
  for (int i = 1; i < 4; ++i)
    for (int c = 0; c < 4; ++c)
      EXPECT_NEAR(out.at(i, c), out.at(0, c), 1e-9);
}

TEST(GATLayer, WorksWithNoRealEdges) {
  util::Rng rng(11);
  GATConv gat(2, 2, 1, 2, rng);
  auto x = ag::Tensor::ones({2, 2});
  auto empty_attr = ag::Tensor::zeros({0, 2});
  auto out = gat.forward(x, {}, {}, empty_attr, 2);
  EXPECT_EQ(out.shape(), (ag::Shape{2, 2}));
}

TEST(GATLayer, ValidatesEdgeAttrShape) {
  util::Rng rng(12);
  GATConv gat(2, 2, 1, 3, rng);
  auto x = ag::Tensor::ones({2, 2});
  auto bad = ag::Tensor::zeros({1, 2});  // dim should be 3
  EXPECT_THROW(gat.forward(x, {0}, {1}, bad, 2), std::invalid_argument);
  EXPECT_THROW(gat.forward(x, {0}, {1}, ag::Tensor(), 2),
               std::invalid_argument);
}

TEST(GATLayer, GradientsFlowToAllParameters) {
  util::Rng rng(13);
  GATConv gat(2, 2, 2, 2, rng);
  auto x = ag::Tensor::ones({3, 2});
  std::vector<std::int64_t> src = {0, 1, 1, 2};
  std::vector<std::int64_t> dst = {1, 0, 2, 1};
  util::Rng data_rng(14);
  auto ea = ag::Tensor::randn({4, 2}, data_rng);
  auto out = gat.forward(x, src, dst, ea, 3);
  auto loss = ag::ops::mean(ag::ops::mul(out, out));
  loss.backward();
  for (auto& p : gat.parameters()) {
    double norm = 0.0;
    for (double gv : p.grad()) norm += gv * gv;
    EXPECT_GT(norm, 0.0) << "a parameter received no gradient";
  }
}

TEST(GATLayer, ParameterGradientsMatchNumerical) {
  util::Rng rng(15);
  GATConv gat(2, 2, 1, 2, rng);
  util::Rng data_rng(16);
  auto x = ag::Tensor::randn({3, 2}, data_rng);
  auto ea = ag::Tensor::randn({4, 2}, data_rng);
  std::vector<std::int64_t> src = {0, 1, 1, 2};
  std::vector<std::int64_t> dst = {1, 0, 2, 1};
  auto loss_fn = [&] {
    auto out = gat.forward(x, src, dst, ea, 3);
    return ag::ops::mean(ag::ops::mul(out, out));
  };
  for (auto p : gat.parameters()) {
    amdgcnn::testing::expect_gradient_matches(p, loss_fn, 1e-5, 1e-5);
  }
}

TEST(GCNLayer, ParameterGradientsMatchNumerical) {
  util::Rng rng(17);
  GCNConv gcn(2, 3, rng);
  util::Rng data_rng(18);
  auto x = ag::Tensor::randn({4, 2}, data_rng);
  std::vector<std::int64_t> src = {0, 1, 1, 2, 2, 3};
  std::vector<std::int64_t> dst = {1, 0, 2, 1, 3, 2};
  auto loss_fn = [&] {
    auto out = gcn.forward(x, src, dst, 4);
    return ag::ops::mean(ag::ops::mul(out, out));
  };
  for (auto p : gcn.parameters())
    amdgcnn::testing::expect_gradient_matches(p, loss_fn, 1e-5, 1e-5);
}

TEST(SortPoolingLayer, ForwardsToOp) {
  SortPooling sp(3);
  EXPECT_EQ(sp.k(), 3);
  auto x = ag::Tensor::from_data({2, 1}, {5, 7});
  auto out = sp.forward(x);
  EXPECT_EQ(out.shape(), (ag::Shape{3, 1}));
  EXPECT_EQ(out.data(), (std::vector<double>{7, 5, 0}));
  EXPECT_THROW(SortPooling(0), std::invalid_argument);
}

TEST(Conv1dLayer, ShapeAndParameterCount) {
  util::Rng rng(19);
  Conv1d conv(4, 8, 3, 1, rng);
  EXPECT_EQ(conv.num_parameters(), 8 * 4 * 3 + 8);
  auto x = ag::Tensor::ones({4, 10});
  EXPECT_EQ(conv.forward(x).shape(), (ag::Shape{8, 8}));
  MaxPool1d pool(2, 2);
  EXPECT_EQ(pool.forward(conv.forward(x)).shape(), (ag::Shape{8, 4}));
}

TEST(MlpLayer, DropoutOnlyInTraining) {
  util::Rng rng(20);
  MLP mlp({4, 16, 2}, 0.9, rng);
  auto x = ag::Tensor::ones({1, 4});
  mlp.set_training(false);
  util::Rng fwd1(1), fwd2(2);
  auto a = mlp.forward(x, fwd1);
  auto b = mlp.forward(x, fwd2);
  EXPECT_EQ(a.data(), b.data());  // eval mode is deterministic
  mlp.set_training(true);
  util::Rng fwd3(3), fwd4(4);
  auto c = mlp.forward(x, fwd3);
  auto d = mlp.forward(x, fwd4);
  bool differs = false;
  for (std::int64_t i = 0; i < c.numel(); ++i)
    differs = differs || c.item(i) != d.item(i);
  EXPECT_TRUE(differs);  // p=0.9 dropout virtually surely differs
}

}  // namespace
}  // namespace amdgcnn::nn
