// Forward-only inference engine tests (DESIGN.md §2.4): the bump-pointer
// arena contract, bit-identical frozen forwards against the training path
// for both model kinds and both dtypes, predict_links determinism across
// worker counts, and the load_weights context diagnostics.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/seal_link_classifier.h"
#include "datasets/wordnet_sim.h"
#include "infer/arena.h"
#include "infer/frozen_model.h"
#include "models/dgcnn.h"
#include "models/serialize.h"
#include "models/trainer.h"
#include "tensor/ops.h"

namespace amdgcnn {
namespace {

// ---- Arena ------------------------------------------------------------------

TEST(Arena, AllocationsAreCacheLineAligned) {
  infer::Arena arena;
  for (std::size_t count : {1u, 3u, 17u, 1000u}) {
    auto* p = arena.alloc<double>(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % infer::Arena::kAlign, 0u);
    EXPECT_EQ(arena.used_bytes() % infer::Arena::kAlign, 0u);
  }
  EXPECT_GE(arena.peak_bytes(), arena.used_bytes());
}

TEST(Arena, GrowthChainsBlocksWithoutInvalidatingPointers) {
  infer::Arena arena(256);
  auto* first = arena.alloc<std::int64_t>(8);
  for (int i = 0; i < 8; ++i) first[i] = 100 + i;
  // Far larger than the first block: must chain, not reallocate.
  auto* big = arena.alloc<double>(1 << 12);
  big[0] = 1.0;
  EXPECT_GE(arena.block_count(), 2u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(first[i], 100 + i);
}

TEST(Arena, MarkRewindReclaimsScratch) {
  infer::Arena arena(1 << 12);
  (void)arena.alloc<double>(16);
  const auto mark = arena.mark();
  const std::size_t before = arena.used_bytes();
  auto* scratch = arena.alloc<double>(64);
  (void)scratch;
  EXPECT_GT(arena.used_bytes(), before);
  arena.rewind(mark);
  EXPECT_EQ(arena.used_bytes(), before);
  // The next allocation reuses the reclaimed range.
  EXPECT_EQ(arena.alloc<double>(64), scratch);
}

TEST(Arena, ResetCoalescesToOneBlockAndKeepsPeak) {
  infer::Arena arena(128);
  (void)arena.alloc<double>(8);
  (void)arena.alloc<double>(4096);  // forces a second block
  ASSERT_GE(arena.block_count(), 2u);
  const std::size_t capacity = arena.capacity_bytes();
  const std::size_t peak = arena.peak_bytes();
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_GE(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.peak_bytes(), peak);
}

// ---- FrozenModel ------------------------------------------------------------

/// Star graph around node 0 with per-edge attributes — the same toy the
/// model tests use, built at a chosen feature dtype.
seal::SubgraphSample star_sample(std::int64_t leaves, double attr_value,
                                 ag::Dtype dtype) {
  seal::SubgraphSample s;
  s.num_nodes = leaves + 1;
  s.label = 0;
  const std::int64_t f = 4;
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f), 0.0);
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    feat[i * f + (i == 0 ? 0 : 1)] = 1.0 + 0.01 * static_cast<double>(i);
  s.node_feat = ag::ops::cast(
      ag::Tensor::from_data({s.num_nodes, f}, std::move(feat)), dtype);
  std::vector<double> ea;
  for (std::int64_t l = 1; l <= leaves; ++l) {
    s.src.push_back(0);
    s.dst.push_back(l);
    s.src.push_back(l);
    s.dst.push_back(0);
    for (int rep = 0; rep < 2; ++rep) {
      ea.push_back(attr_value);
      ea.push_back(1.0 - attr_value);
    }
  }
  s.edge_attr = ag::ops::cast(
      ag::Tensor::from_data({static_cast<std::int64_t>(s.src.size()), 2},
                            std::move(ea)),
      dtype);
  return s;
}

models::ModelConfig small_config(models::GnnKind kind, ag::Dtype dtype) {
  models::ModelConfig mc;
  mc.kind = kind;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 2;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dense_dim = 16;
  mc.dtype = dtype;
  return mc;
}

/// Frozen logits must equal the eval-mode training forward BIT FOR BIT.
void expect_bit_identical(models::GnnKind kind, ag::Dtype model_dtype,
                          ag::Dtype sample_dtype) {
  util::Rng rng(11);
  auto model = models::make_link_gnn(small_config(kind, model_dtype), rng);
  model->set_training(false);
  infer::FrozenModel frozen(*model);
  infer::Arena arena;
  for (std::int64_t leaves : {1, 3, 6, 14}) {
    const auto s = star_sample(leaves, 0.7, sample_dtype);
    util::Rng fwd(1);
    const auto logits = model->forward(s, fwd);
    double mine[2];
    frozen.forward_logits(s, arena, mine);
    for (int j = 0; j < 2; ++j)
      EXPECT_EQ(logits.item(j), mine[j])
          << models::gnn_kind_name(kind) << " "
          << ag::dtype_name(model_dtype) << " leaves=" << leaves
          << " logit " << j;
  }
}

TEST(FrozenModel, BitIdenticalLogitsBothKindsBothDtypes) {
  for (auto kind :
       {models::GnnKind::kVanillaDGCNN, models::GnnKind::kAMDGCNN})
    for (auto dtype : {ag::Dtype::f64, ag::Dtype::f32})
      expect_bit_identical(kind, dtype, dtype);
}

TEST(FrozenModel, BitIdenticalAcrossBoundaryCast) {
  // f64-built samples into an f32 model: the frozen path's widening cast
  // must match ops::cast at the training model boundary.
  expect_bit_identical(models::GnnKind::kAMDGCNN, ag::Dtype::f32,
                       ag::Dtype::f64);
  expect_bit_identical(models::GnnKind::kVanillaDGCNN, ag::Dtype::f32,
                       ag::Dtype::f64);
}

TEST(FrozenModel, ProbabilitiesMatchTrainerPredictProba) {
  for (auto dtype : {ag::Dtype::f64, ag::Dtype::f32}) {
    util::Rng rng(12);
    auto model = models::make_link_gnn(
        small_config(models::GnnKind::kAMDGCNN, dtype), rng);
    models::TrainConfig tc;
    tc.dtype = dtype;
    models::Trainer trainer(*model, tc);
    std::vector<seal::SubgraphSample> samples;
    for (std::int64_t leaves : {2, 5})
      samples.push_back(star_sample(leaves, 0.3, dtype));
    const auto reference = trainer.predict_proba(samples);

    infer::FrozenModel frozen(*model);
    infer::Arena arena;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double mine[2];
      frozen.predict_proba(samples[i], arena, mine);
      for (int j = 0; j < 2; ++j) EXPECT_EQ(reference[i * 2 + j], mine[j]);
    }
  }
}

TEST(FrozenModel, ArenaStopsGrowingAfterWarmUp) {
  util::Rng rng(13);
  auto model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
  infer::FrozenModel frozen(*model);
  infer::Arena arena;
  frozen.warm_up(arena, /*max_nodes=*/16, /*max_edges=*/32);
  EXPECT_EQ(arena.block_count(), 1u);
  const std::size_t capacity = arena.capacity_bytes();
  ASSERT_GT(capacity, 0u);

  double sink[2];
  for (int pass = 0; pass < 2; ++pass)
    for (std::int64_t leaves : {1, 4, 8, 15}) {
      const auto s = star_sample(leaves, 0.5, ag::Dtype::f32);
      frozen.forward_logits(s, arena, sink);
      EXPECT_EQ(arena.capacity_bytes(), capacity)
          << "arena grew on pass " << pass << " leaves=" << leaves;
      EXPECT_EQ(arena.block_count(), 1u);
    }
}

TEST(FrozenModel, WorksWithoutEdges) {
  util::Rng rng(14);
  auto model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f64), rng);
  model->set_training(false);
  seal::SubgraphSample s;
  s.num_nodes = 2;
  s.node_feat = ag::Tensor::ones({2, 4});
  s.edge_attr = ag::Tensor::zeros({0, 2});
  util::Rng fwd(2);
  const auto logits = model->forward(s, fwd);
  infer::FrozenModel frozen(*model);
  infer::Arena arena;
  double mine[2];
  frozen.forward_logits(s, arena, mine);
  for (int j = 0; j < 2; ++j) EXPECT_EQ(logits.item(j), mine[j]);
}

// ---- predict_links ----------------------------------------------------------

datasets::LinkDataset tiny_wordnet() {
  datasets::WordNetSimOptions o;
  o.num_nodes = 300;
  o.num_train = 80;
  o.num_test = 30;
  o.mean_degree = 5.0;
  return datasets::make_wordnet_sim(o);
}

TEST(LinkPredictor, MatchesTrainerPipelineAndIsThreadCountInvariant) {
  for (auto dtype : {ag::Dtype::f64, ag::Dtype::f32}) {
    auto data = tiny_wordnet();
    core::ClassifierConfig cfg;
    cfg.model.kind = models::GnnKind::kAMDGCNN;
    cfg.model.hidden_dim = 16;
    cfg.model.heads = 2;
    cfg.model.num_layers = 2;
    cfg.model.sort_k = 10;
    cfg.model.dtype = dtype;
    cfg.training.epochs = 1;
    cfg.training.dtype = dtype;
    cfg.dataset.extract.max_nodes = 32;
    cfg.dataset.features.dtype = dtype;
    core::SealLinkClassifier clf(cfg);
    clf.fit(data.graph, data.train_links, data.num_classes);

    // The frozen pipeline must reproduce the trainer pipeline bit for bit.
    const auto reference = clf.predict_proba(data.graph, data.test_links);
    const auto frozen = clf.predict_links(data.graph, data.test_links);
    ASSERT_EQ(frozen.proba.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_EQ(reference[i], frozen.proba[i]) << "row " << i;
    ASSERT_EQ(frozen.labels.size(), data.test_links.size());

    // ... and be byte-identical for every worker count.
    for (std::int64_t threads : {1, 3}) {
      core::LinkPredictor::Options options;
      options.dataset = cfg.dataset;
      options.dataset.num_threads = threads;
      options.warm_nodes = 32;
      options.warm_edges = 64;
      core::LinkPredictor predictor(clf.model(), options);
      const auto parallel = predictor.predict_links(data.graph,
                                                    data.test_links);
      ASSERT_EQ(parallel.proba.size(), frozen.proba.size());
      EXPECT_EQ(0, std::memcmp(parallel.proba.data(), frozen.proba.data(),
                               frozen.proba.size() * sizeof(double)))
          << "num_threads=" << threads << " diverged";
      EXPECT_EQ(parallel.labels, frozen.labels);
      EXPECT_GT(predictor.arena_peak_bytes(), 0u);
    }
  }
}

TEST(LinkPredictor, RejectsNegativeThreadCounts) {
  util::Rng rng(15);
  auto model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
  core::LinkPredictor::Options options;
  options.dataset.num_threads = -1;
  EXPECT_THROW(core::LinkPredictor(*model, options), std::invalid_argument);
}

// ---- load_weights diagnostics ----------------------------------------------

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return std::string();
}

TEST(SerializeDiagnostics, MismatchErrorsNameContextAndParameter) {
  const std::string path =
      ::testing::TempDir() + "/amdgcnn_infer_ckpt.bin";
  util::Rng rng(16);
  auto saved = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
  models::save_weights(*saved, path);

  // Wrong width: the error names the context, the parameter index, and both
  // shapes.
  auto wide = small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32);
  wide.hidden_dim = 16;
  auto wide_model = models::make_link_gnn(wide, rng);
  const auto shape_msg = error_of(
      [&] { models::load_weights(*wide_model, path, "AM-DGCNN toy"); });
  EXPECT_NE(shape_msg.find("load_weights[AM-DGCNN toy]"), std::string::npos)
      << shape_msg;
  EXPECT_NE(shape_msg.find("shape mismatch"), std::string::npos) << shape_msg;
  EXPECT_NE(shape_msg.find("at parameter 0"), std::string::npos) << shape_msg;

  // Wrong precision: "dtype mismatch" with expected vs found names.
  auto f64_model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f64), rng);
  const auto dtype_msg =
      error_of([&] { models::load_weights(*f64_model, path, "f64 build"); });
  EXPECT_NE(dtype_msg.find("load_weights[f64 build]"), std::string::npos)
      << dtype_msg;
  EXPECT_NE(dtype_msg.find("dtype mismatch"), std::string::npos) << dtype_msg;
  EXPECT_NE(dtype_msg.find("f32"), std::string::npos) << dtype_msg;
  EXPECT_NE(dtype_msg.find("f64"), std::string::npos) << dtype_msg;

  // Wrong architecture: count mismatch states both counts.
  auto deep = small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32);
  deep.num_layers = 3;
  auto deep_model = models::make_link_gnn(deep, rng);
  const auto count_msg =
      error_of([&] { models::load_weights(*deep_model, path, "deep"); });
  EXPECT_NE(count_msg.find("parameter count mismatch"), std::string::npos)
      << count_msg;
  EXPECT_NE(count_msg.find(std::to_string(saved->parameters().size())),
            std::string::npos)
      << count_msg;
  EXPECT_NE(count_msg.find(std::to_string(deep_model->parameters().size())),
            std::string::npos)
      << count_msg;
}

}  // namespace
}  // namespace amdgcnn
