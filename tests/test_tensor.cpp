// Unit tests for the ag::Tensor container and tape mechanics.
#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace amdgcnn::ag {
namespace {

TEST(Shape, NumelAndFormatting) {
  EXPECT_EQ(numel({2, 3}), 6);
  EXPECT_EQ(numel({7}), 7);
  EXPECT_EQ(numel({}), 1);
  EXPECT_EQ(numel({4, 0}), 0);
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
  EXPECT_THROW(numel({-1, 2}), std::invalid_argument);
}

TEST(Tensor, ZerosOnesFull) {
  auto z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (double v : z.data()) EXPECT_EQ(v, 0.0);
  auto o = Tensor::ones({4});
  for (double v : o.data()) EXPECT_EQ(v, 1.0);
  auto f = Tensor::full({2, 2}, 3.5);
  for (double v : f.data()) EXPECT_EQ(v, 3.5);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AccessorsAndBounds) {
  auto t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(t.item(4), 5.0);
  EXPECT_THROW(t.at(2, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0, 3), std::invalid_argument);
  EXPECT_THROW(t.item(6), std::invalid_argument);
}

TEST(Tensor, UndefinedTensorRejectsUse) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.shape(), std::invalid_argument);
  EXPECT_THROW(t.data(), std::invalid_argument);
  EXPECT_THROW(t.backward(), std::invalid_argument);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  util::Rng rng1(42), rng2(42), rng3(43);
  auto a = Tensor::randn({3, 3}, rng1);
  auto b = Tensor::randn({3, 3}, rng2);
  auto c = Tensor::randn({3, 3}, rng3);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
}

TEST(Tensor, XavierBoundsRespected) {
  util::Rng rng(1);
  auto w = Tensor::xavier(10, 30, rng);
  const double bound = std::sqrt(6.0 / 40.0);
  for (double v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Tensor, CopyIsSharedHandle) {
  auto a = Tensor::zeros({2});
  Tensor b = a;
  b.data()[0] = 7.0;
  EXPECT_DOUBLE_EQ(a.item(0), 7.0);
}

TEST(Tensor, DetachCopiesDataAndDropsTape) {
  util::Rng rng(3);
  auto a = Tensor::randn({2, 2}, rng).requires_grad(true);
  auto b = ops::mul_scalar(a, 2.0);
  auto d = b.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data(), b.data());
  d.data()[0] = 99.0;
  EXPECT_NE(d.data()[0], b.data()[0]);
}

TEST(Autograd, BackwardRequiresScalar) {
  auto a = Tensor::ones({2, 2}).requires_grad(true);
  auto b = ops::mul_scalar(a, 2.0);
  EXPECT_THROW(b.backward(), std::invalid_argument);
}

TEST(Autograd, BackwardOnNonGradTensorThrows) {
  auto a = Tensor::ones({1});
  EXPECT_THROW(a.backward(), std::invalid_argument);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  auto a = Tensor::ones({1}).requires_grad(true);
  auto loss1 = ops::mul_scalar(a, 3.0);
  loss1.backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 3.0);
  auto loss2 = ops::mul_scalar(a, 5.0);
  loss2.backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 8.0);  // += semantics
  a.zero_grad();
  EXPECT_DOUBLE_EQ(a.grad()[0], 0.0);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(a*a + a*a) -> d/da = 4a.
  auto a = Tensor::from_data({2}, {1.0, 2.0}).requires_grad(true);
  auto sq = ops::mul(a, a);
  auto loss = ops::sum(ops::add(sq, sq));
  loss.backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 4.0);
  EXPECT_DOUBLE_EQ(a.grad()[1], 8.0);
}

TEST(Autograd, ConstantBranchesReceiveNoGradStorageWrites) {
  auto a = Tensor::ones({2}).requires_grad(true);
  auto c = Tensor::full({2}, 3.0);  // constant
  auto loss = ops::sum(ops::mul(a, c));
  loss.backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 3.0);
  EXPECT_FALSE(c.requires_grad());
}

TEST(Autograd, DeepChainBackwardDoesNotOverflowStack) {
  auto a = Tensor::ones({1}).requires_grad(true);
  Tensor x = a;
  for (int i = 0; i < 20000; ++i) x = ops::add_scalar(x, 0.0);
  auto loss = ops::sum(x);
  loss.backward();
  EXPECT_DOUBLE_EQ(a.grad()[0], 1.0);
}

TEST(Autograd, ResultRequiresGradOnlyWhenAParentDoes) {
  auto a = Tensor::ones({2});
  auto b = Tensor::ones({2});
  EXPECT_FALSE(ops::add(a, b).requires_grad());
  a.requires_grad(true);
  EXPECT_TRUE(ops::add(a, b).requires_grad());
}

}  // namespace
}  // namespace amdgcnn::ag
