// Optimizer convergence tests and dense linear-algebra kernel tests.
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace amdgcnn::ag {
namespace {

// ---- Optimizers -------------------------------------------------------------

/// Quadratic bowl loss: sum((x - target)^2).
Tensor bowl_loss(Tensor& x, const Tensor& target) {
  auto d = ops::sub(x, target);
  return ops::sum(ops::mul(d, d));
}

TEST(SGDTest, ConvergesOnQuadratic) {
  auto x = Tensor::from_data({3}, {5.0, -3.0, 2.0}).requires_grad(true);
  auto target = Tensor::from_data({3}, {1.0, 2.0, -1.0});
  SGD opt({x}, /*lr=*/0.1);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    bowl_loss(x, target).backward();
    opt.step();
  }
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(x.data()[i], target.data()[i], 1e-6);
}

TEST(SGDTest, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    auto x = Tensor::from_data({1}, {10.0}).requires_grad(true);
    auto target = Tensor::from_data({1}, {0.0});
    SGD opt({x}, 0.01, momentum);
    for (int i = 0; i < 50; ++i) {
      opt.zero_grad();
      bowl_loss(x, target).backward();
      opt.step();
    }
    return std::abs(x.data()[0]);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  auto x = Tensor::from_data({3}, {5.0, -3.0, 2.0}).requires_grad(true);
  auto target = Tensor::from_data({3}, {1.0, 2.0, -1.0});
  Adam opt({x}, /*lr=*/0.1);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    bowl_loss(x, target).backward();
    opt.step();
  }
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(x.data()[i], target.data()[i], 1e-4);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  auto x = Tensor::from_data({1}, {1.0}).requires_grad(true);
  Adam opt({x}, 0.01, 0.9, 0.999, 1e-8, /*weight_decay=*/1.0);
  // Loss is identically zero; only weight decay acts.
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    opt.step();
  }
  EXPECT_LT(std::abs(x.data()[0]), 1.0);
}

TEST(OptimizerTest, ClipGradNormScalesLongGradients) {
  auto x = Tensor::from_data({2}, {0.0, 0.0}).requires_grad(true);
  SGD opt({x}, 1.0);
  x.grad()[0] = 3.0;
  x.grad()[1] = 4.0;  // norm 5
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(x.grad()[0], 0.6, 1e-12);
  EXPECT_NEAR(x.grad()[1], 0.8, 1e-12);
  // Short gradients untouched.
  const double pre2 = opt.clip_grad_norm(10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-12);
  EXPECT_NEAR(x.grad()[0], 0.6, 1e-12);
}

TEST(OptimizerTest, RejectsNonGradParameters) {
  auto x = Tensor::ones({2});
  EXPECT_THROW(SGD({x}, 0.1), std::invalid_argument);
}

// ---- Linear algebra ----------------------------------------------------------

TEST(Cholesky, FactorsKnownSpdMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  const std::vector<double> a = {4, 2, 2, 3};
  auto l = linalg::cholesky(a, 2);
  EXPECT_NEAR(l[0], 2.0, 1e-12);
  EXPECT_NEAR(l[1], 0.0, 1e-12);
  EXPECT_NEAR(l[2], 1.0, 1e-12);
  EXPECT_NEAR(l[3], std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_THROW(linalg::cholesky(a, 2), std::runtime_error);
}

TEST(Cholesky, ReconstructsRandomSpdMatrices) {
  util::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4 + trial;
    // A = B B^T + n I is SPD.
    std::vector<double> b(n * n);
    for (auto& v : b) v = rng.normal();
    std::vector<double> a(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k)
          a[i * n + j] += b[i * n + k] * b[j * n + k];
        if (i == j) a[i * n + j] += static_cast<double>(n);
      }
    auto l = linalg::cholesky(a, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double recon = 0.0;
        for (std::size_t k = 0; k < n; ++k)
          recon += l[i * n + k] * l[j * n + k];
        EXPECT_NEAR(recon, a[i * n + j], 1e-9);
      }
  }
}

TEST(TriangularSolve, SolvesSpdSystem) {
  const std::vector<double> a = {4, 2, 2, 3};
  const std::vector<double> rhs = {10, 9};
  auto x = linalg::solve_spd(a, 2, rhs);
  // Verify A x = rhs.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-10);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 9.0, 1e-10);
}

TEST(LinalgHelpers, MatvecAndDot) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  auto y = linalg::matvec(a, 2, 3, {1, 0, -1});
  EXPECT_EQ(y, (std::vector<double>{-2, -2}));
  EXPECT_DOUBLE_EQ(linalg::dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(linalg::dot({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(linalg::matvec(a, 2, 3, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn::ag
