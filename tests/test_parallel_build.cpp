// Determinism and property tests for the parallel SEAL dataset build
// (DESIGN.md §2.2) and the extraction/DRNL stages it drives.
//
// Three layers:
//   * ParallelDatasetBuild — the contract of SealDatasetOptions::num_threads:
//     every worker count produces BIT-IDENTICAL output (tensor bytes, labels,
//     DRNL distance vectors) to the serial path.
//   * DrnlProperty — node-permutation invariance and drnl(u,v) == drnl(v,u)
//     symmetry of the labeling, on randomized KGs.
//   * ExtractionProperty — structural invariants of every extracted
//     enclosing subgraph (targets present at local ids 0/1, hop bound,
//     neighborhood rule, size cap, edge provenance).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <exception>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datasets/kg_generator.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "seal/dataset.h"
#include "seal/drnl.h"
#include "test_util.h"
#include "util/parallel_error.h"

namespace amdgcnn {
namespace {

// Random KGs / link lists and the byte-level sample comparison are the
// shared generator module in test_util.h (reused by the dynamic-graph
// suite).
using testing::expect_samples_identical;
using testing::random_kg_options;
using testing::random_links;

// ---- ParallelDatasetBuild ---------------------------------------------------

TEST(ParallelDatasetBuild, BitIdenticalForAnyWorkerCount) {
  const auto g = datasets::make_random_kg(random_kg_options(7));
  const auto train = random_links(g, 40, /*num_classes=*/3, /*seed=*/11);
  const auto test = random_links(g, 15, /*num_classes=*/3, /*seed=*/13);

  seal::SealDatasetOptions options;
  options.extract.num_hops = 2;
  options.extract.max_nodes = 24;
  options.features.max_drnl_label = 16;

  options.num_threads = 0;  // legacy serial loop
  const auto serial = seal::build_seal_dataset(g, train, test, 3, options);
  for (std::int64_t nt : {1, 2, 4, 8}) {
    options.num_threads = nt;
    const auto parallel = seal::build_seal_dataset(g, train, test, 3, options);
    EXPECT_EQ(parallel.num_classes, serial.num_classes);
    EXPECT_EQ(parallel.node_feature_dim, serial.node_feature_dim);
    EXPECT_EQ(parallel.edge_attr_dim, serial.edge_attr_dim);
    expect_samples_identical(parallel.train, serial.train, "train");
    expect_samples_identical(parallel.test, serial.test, "test");
  }
}

TEST(ParallelDatasetBuild, ExtractionStagesMatchSerialPath) {
  // Below the tensor level: the extracted subgraphs themselves (node order,
  // edge lists, both DRNL distance vectors) must be identical when the
  // parallel build's samples are recomputed serially.
  const auto g = datasets::make_random_kg(random_kg_options(21));
  const auto links = random_links(g, 30, /*num_classes=*/2, /*seed=*/5);

  seal::SealDatasetOptions options;
  options.extract.num_hops = 2;
  options.num_threads = 4;
  const auto samples = seal::build_samples(g, links, options);
  ASSERT_EQ(samples.size(), links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto sub = graph::extract_enclosing_subgraph(
        g, links[i].a, links[i].b, options.extract);
    const auto labels = seal::drnl_labels(sub);
    const auto reference =
        seal::build_sample(g, sub, links[i].label, options.features);
    EXPECT_EQ(samples[i].num_nodes, sub.num_nodes()) << "sample " << i;
    EXPECT_EQ(samples[i].node_feat.data(), reference.node_feat.data())
        << "sample " << i;
    EXPECT_EQ(samples[i].src, reference.src) << "sample " << i;
    EXPECT_EQ(samples[i].dst, reference.dst) << "sample " << i;
    // The DRNL one-hot block is the leading columns of each feature row;
    // spot-check it decodes back to drnl_labels(sub).
    const std::int64_t width = options.features.max_drnl_label + 1;
    const std::int64_t f = samples[i].node_feat.dim(1);
    for (std::int64_t v = 0; v < sub.num_nodes(); ++v) {
      const std::int64_t clamped =
          std::min<std::int64_t>(labels[static_cast<std::size_t>(v)],
                                 options.features.max_drnl_label);
      for (std::int64_t col = 0; col < width; ++col)
        EXPECT_EQ(samples[i].node_feat.data()[v * f + col],
                  col == clamped ? 1.0 : 0.0)
            << "sample " << i << " node " << v << " col " << col;
    }
  }
}

TEST(ParallelDatasetBuild, RejectsNegativeThreadCount) {
  const auto g = datasets::make_random_kg(random_kg_options(3));
  const auto links = random_links(g, 4, 2, 9);
  seal::SealDatasetOptions options;
  options.num_threads = -1;
  EXPECT_THROW(seal::build_samples(g, links, options), std::invalid_argument);
}

TEST(ParallelDatasetBuild, DefaultBuildThreadsIsPositive) {
  EXPECT_GE(seal::default_build_threads(), 1);
}

// A poisoned link (endpoint past num_nodes) inside the parallel build must
// not tear down the process — exceptions cannot cross the OpenMP join — and
// must not race: the join rethrows util::WorkerError naming the stage and
// the LOWEST failing link index with the original exception nested, the
// same report for every worker count and schedule.
TEST(ParallelDatasetBuild, WorkerFailureIsDeterministicWorkerError) {
  const auto g = datasets::make_random_kg(random_kg_options(7));
  auto links = random_links(g, 24, /*num_classes=*/3, /*seed=*/17);
  const auto bad = static_cast<graph::NodeId>(g.num_nodes() + 100);
  links[5].b = bad;   // first poisoned item: the one that must be reported
  links[19].a = bad;  // later failure must lose to item 5 under any schedule

  seal::SealDatasetOptions options;
  options.extract.num_hops = 2;
  options.extract.max_nodes = 24;
  for (std::int64_t nt : {1, 2, 8}) {
    options.num_threads = nt;
    try {
      seal::build_samples(g, links, options);
      FAIL() << "expected util::WorkerError (threads=" << nt << ")";
    } catch (const util::WorkerError& e) {
      EXPECT_EQ(e.item(), 5);
      EXPECT_NE(std::string(e.what()).find(
                    "build_samples: worker failed at item 5"),
                std::string::npos)
          << e.what();
      bool nested_is_original = false;
      try {
        std::rethrow_if_nested(e);
      } catch (const std::invalid_argument&) {
        nested_is_original = true;  // find_edge: node out of range
      }
      EXPECT_TRUE(nested_is_original);
    }
  }

  // The serial path (num_threads == 0) has no join to cross, so the raw
  // exception propagates unwrapped.
  options.num_threads = 0;
  EXPECT_THROW(seal::build_samples(g, links, options), std::invalid_argument);
}

// ---- DrnlProperty -----------------------------------------------------------

TEST(DrnlProperty, HashIsSymmetricInTheTwoDistances) {
  for (std::int32_t x = -1; x <= 12; ++x)
    for (std::int32_t y = -1; y <= 12; ++y)
      EXPECT_EQ(seal::drnl_label(x, y), seal::drnl_label(y, x))
          << "x=" << x << " y=" << y;
}

TEST(DrnlProperty, SwappingTargetsPreservesPerNodeLabels) {
  // drnl is defined on unordered pairs: extracting (a, b) and (b, a) must
  // assign every original node the same label.
  const auto g = datasets::make_random_kg(random_kg_options(17));
  const auto links = random_links(g, 20, 2, 23);
  graph::ExtractOptions options;
  options.num_hops = 2;
  for (const auto& link : links) {
    const auto sub_ab =
        graph::extract_enclosing_subgraph(g, link.a, link.b, options);
    const auto sub_ba =
        graph::extract_enclosing_subgraph(g, link.b, link.a, options);
    const auto labels_ab = seal::drnl_labels(sub_ab);
    const auto labels_ba = seal::drnl_labels(sub_ba);
    std::map<graph::NodeId, std::int64_t> by_node_ab, by_node_ba;
    for (std::size_t i = 0; i < sub_ab.nodes.size(); ++i)
      by_node_ab[sub_ab.nodes[i]] = labels_ab[i];
    for (std::size_t i = 0; i < sub_ba.nodes.size(); ++i)
      by_node_ba[sub_ba.nodes[i]] = labels_ba[i];
    EXPECT_EQ(by_node_ab, by_node_ba)
        << "link (" << link.a << ", " << link.b << ")";
  }
}

/// Rebuild g with node ids relabeled by `perm` (perm[old] = new), preserving
/// types, attributes, and edge insertion order.
graph::KnowledgeGraph permute_nodes(const graph::KnowledgeGraph& g,
                                    const std::vector<graph::NodeId>& perm) {
  graph::KnowledgeGraph out(g.num_node_types(), g.num_edge_types(),
                            g.edge_attr_dim(), g.node_feat_dim());
  std::vector<std::int32_t> types(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    types[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] =
        g.node_type(v);
  for (const auto t : types) out.add_node(t);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    out.add_edge(perm[static_cast<std::size_t>(edge.src)],
                 perm[static_cast<std::size_t>(edge.dst)], edge.type);
  }
  for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
    out.set_edge_type_attr(t, g.edge_type_attr(t));
  out.finalize();
  return out;
}

TEST(DrnlProperty, InvariantUnderNodeRelabeling) {
  // Isomorphic graphs must yield identical per-node DRNL labels for the
  // corresponding links.  max_nodes stays 0: the size cap tie-breaks on raw
  // node id, which a relabeling is free to change.
  const auto g = datasets::make_random_kg(random_kg_options(29));
  std::vector<graph::NodeId> perm(static_cast<std::size_t>(g.num_nodes()));
  for (std::size_t i = 0; i < perm.size(); ++i)
    perm[i] = static_cast<graph::NodeId>(i);
  util::Rng rng(31);
  rng.shuffle(perm);
  const auto h = permute_nodes(g, perm);

  graph::ExtractOptions options;
  options.num_hops = 2;
  options.max_nodes = 0;
  const auto links = random_links(g, 20, 2, 37);
  for (const auto& link : links) {
    const auto sub_g =
        graph::extract_enclosing_subgraph(g, link.a, link.b, options);
    const auto sub_h = graph::extract_enclosing_subgraph(
        h, perm[static_cast<std::size_t>(link.a)],
        perm[static_cast<std::size_t>(link.b)], options);
    const auto labels_g = seal::drnl_labels(sub_g);
    const auto labels_h = seal::drnl_labels(sub_h);
    ASSERT_EQ(sub_g.nodes.size(), sub_h.nodes.size());
    std::map<graph::NodeId, std::int64_t> by_node_g, by_node_h;
    for (std::size_t i = 0; i < sub_g.nodes.size(); ++i)
      by_node_g[perm[static_cast<std::size_t>(sub_g.nodes[i])]] = labels_g[i];
    for (std::size_t i = 0; i < sub_h.nodes.size(); ++i)
      by_node_h[sub_h.nodes[i]] = labels_h[i];
    EXPECT_EQ(by_node_g, by_node_h)
        << "link (" << link.a << ", " << link.b << ")";
  }
}

// ---- ExtractionProperty -----------------------------------------------------

TEST(ExtractionProperty, SubgraphInvariantsHoldOnRandomGraphs) {
  for (std::uint64_t seed : {41u, 43u, 47u}) {
    const auto g = datasets::make_random_kg(random_kg_options(seed));
    const auto links = random_links(g, 25, 2, seed + 1);
    for (auto mode : {graph::NeighborhoodMode::kUnion,
                      graph::NeighborhoodMode::kIntersection}) {
      graph::ExtractOptions options;
      options.num_hops = 2;
      options.mode = mode;
      for (const auto& link : links) {
        const auto sub =
            graph::extract_enclosing_subgraph(g, link.a, link.b, options);
        // Targets always present, at the pinned local ids.
        ASSERT_GE(sub.num_nodes(), 2);
        EXPECT_EQ(sub.nodes[graph::EnclosingSubgraph::kTargetA], link.a);
        EXPECT_EQ(sub.nodes[graph::EnclosingSubgraph::kTargetB], link.b);
        EXPECT_EQ(sub.dist_a[0], 0);
        EXPECT_EQ(sub.dist_b[1], 0);

        // Hop bound + neighborhood rule, checked against independent
        // full-graph BFS.  Membership masks only the target link (the hull
        // is collected before the DRNL convention kicks in).
        graph::BfsOptions hull;
        hull.max_depth = options.num_hops;
        hull.masked_edge = g.find_edge(link.a, link.b);
        const auto hull_a = graph::bfs_distances(g, link.a, hull);
        const auto hull_b = graph::bfs_distances(g, link.b, hull);
        // Lower bounds for the DRNL distances: unbounded-depth BFS with the
        // other target removed, on the FULL graph.  The subgraph's own
        // distances may only be larger (paths through dropped nodes vanish)
        // and may only reach fewer nodes.
        graph::BfsOptions from_a = hull, from_b = hull;
        from_a.max_depth = -1;
        from_b.max_depth = -1;
        from_a.masked_node = link.b;
        from_b.masked_node = link.a;
        const auto da = graph::bfs_distances(g, link.a, from_a);
        const auto db = graph::bfs_distances(g, link.b, from_b);
        std::set<graph::NodeId> members(sub.nodes.begin(), sub.nodes.end());
        ASSERT_EQ(members.size(), sub.nodes.size()) << "duplicate nodes";
        ASSERT_EQ(sub.dist_a.size(), sub.nodes.size());
        ASSERT_EQ(sub.dist_b.size(), sub.nodes.size());
        for (std::size_t i = 2; i < sub.nodes.size(); ++i) {
          const auto v = sub.nodes[i];
          const auto ha = hull_a[static_cast<std::size_t>(v)];
          const auto hb = hull_b[static_cast<std::size_t>(v)];
          const bool in_a = ha != graph::kUnreachable;
          const bool in_b = hb != graph::kUnreachable;
          if (mode == graph::NeighborhoodMode::kUnion)
            EXPECT_TRUE(in_a || in_b) << "node " << v << " outside hull";
          else
            EXPECT_TRUE(in_a && in_b) << "node " << v << " outside hull";
          if (sub.dist_a[i] != graph::kUnreachable) {
            ASSERT_NE(da[static_cast<std::size_t>(v)], graph::kUnreachable)
                << "node " << v;
            EXPECT_GE(sub.dist_a[i], da[static_cast<std::size_t>(v)])
                << "node " << v;
          }
          if (sub.dist_b[i] != graph::kUnreachable) {
            ASSERT_NE(db[static_cast<std::size_t>(v)], graph::kUnreachable)
                << "node " << v;
            EXPECT_GE(sub.dist_b[i], db[static_cast<std::size_t>(v)])
                << "node " << v;
          }
        }

        // Every induced edge maps to a real, non-masked full-graph edge
        // between the claimed endpoints.
        for (const auto& e : sub.edges) {
          ASSERT_GE(e.src, 0);
          ASSERT_LT(e.src, sub.num_nodes());
          ASSERT_GE(e.dst, 0);
          ASSERT_LT(e.dst, sub.num_nodes());
          EXPECT_NE(e.orig, hull.masked_edge) << "target link leaked";
          const auto& orig = g.edge(e.orig);
          const auto u = sub.nodes[static_cast<std::size_t>(e.src)];
          const auto v = sub.nodes[static_cast<std::size_t>(e.dst)];
          EXPECT_TRUE((orig.src == u && orig.dst == v) ||
                      (orig.src == v && orig.dst == u))
              << "edge " << e.orig << " endpoints mismatch";
        }
      }
    }
  }
}

TEST(ExtractionProperty, MaxNodesCapsSubgraphSize) {
  const auto g = datasets::make_random_kg(random_kg_options(53));
  const auto links = random_links(g, 15, 2, 59);
  graph::ExtractOptions capped;
  capped.num_hops = 2;
  capped.max_nodes = 8;
  for (const auto& link : links) {
    const auto sub =
        graph::extract_enclosing_subgraph(g, link.a, link.b, capped);
    EXPECT_LE(sub.num_nodes(), 8);
    EXPECT_EQ(sub.nodes[0], link.a);
    EXPECT_EQ(sub.nodes[1], link.b);
  }
}

}  // namespace
}  // namespace amdgcnn
