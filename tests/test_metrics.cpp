// Metric tests: exact AUC/AP values on hand-computed rankings, tie handling,
// the ROC-trapezoid cross-check property, and multiclass aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/classification.h"
#include "metrics/ranking.h"
#include "util/rng.h"

namespace amdgcnn::metrics {
namespace {

TEST(BinaryAuc, PerfectSeparationGivesOne) {
  EXPECT_DOUBLE_EQ(binary_auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(BinaryAuc, PerfectInversionGivesZero) {
  EXPECT_DOUBLE_EQ(binary_auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(BinaryAuc, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(binary_auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(BinaryAuc, HandComputedMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(binary_auc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(BinaryAuc, TieBetweenClassesCountsHalf) {
  // pos {0.5}, neg {0.5, 0.1}: pairs tie (1/2) + win (1) over 2 -> 0.75.
  EXPECT_DOUBLE_EQ(binary_auc({0.5, 0.5, 0.1}, {1, 0, 0}), 0.75);
}

TEST(BinaryAuc, ValidatesInputs) {
  EXPECT_THROW(binary_auc({0.5}, {1}), std::invalid_argument);   // one class
  EXPECT_THROW(binary_auc({0.5, 0.2}, {1}), std::invalid_argument);
  EXPECT_THROW(binary_auc({}, {}), std::invalid_argument);
  EXPECT_THROW(binary_auc({0.5, 0.2}, {1, 2}), std::invalid_argument);
}

TEST(BinaryAuc, MatchesRocTrapezoidOnRandomData) {
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> scores(60);
    std::vector<std::int32_t> labels(60);
    for (int i = 0; i < 60; ++i) {
      labels[i] = rng.bernoulli(0.4) ? 1 : 0;
      // Quantised scores force plenty of ties.
      scores[i] = std::floor(rng.uniform() * 8.0) / 8.0 + 0.3 * labels[i];
    }
    if (!has_both_classes(labels)) continue;
    const auto pts = roc_curve(scores, labels);
    double trapz = 0.0;
    for (std::size_t i = 1; i < pts.size(); ++i)
      trapz += (pts[i].first - pts[i - 1].first) *
               (pts[i].second + pts[i - 1].second) / 2.0;
    EXPECT_NEAR(binary_auc(scores, labels), trapz, 1e-12);
  }
}

TEST(RocCurve, EndpointsAndMonotone) {
  auto pts = roc_curve({0.9, 0.1, 0.5, 0.4}, {1, 0, 1, 0});
  EXPECT_EQ(pts.front(), (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(pts.back(), (std::pair<double, double>{1.0, 1.0}));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(AveragePrecision, PerfectRankingGivesOne) {
  EXPECT_DOUBLE_EQ(binary_average_precision({0.9, 0.8, 0.3}, {1, 1, 0}), 1.0);
}

TEST(AveragePrecision, HandComputedCase) {
  // Ranking: pos(0.9), neg(0.8), pos(0.7).
  // After 1st: recall .5, prec 1; after 3rd: recall 1, prec 2/3.
  // AP = .5 * 1 + .5 * 2/3 = 5/6.
  EXPECT_NEAR(binary_average_precision({0.9, 0.7, 0.8}, {1, 1, 0}),
              5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, RequiresPositives) {
  EXPECT_THROW(binary_average_precision({0.5, 0.2}, {0, 0}),
               std::invalid_argument);
}

TEST(HasBothClasses, Detects) {
  EXPECT_TRUE(has_both_classes({0, 1}));
  EXPECT_FALSE(has_both_classes({1, 1}));
  EXPECT_FALSE(has_both_classes({0}));
}

// ---- Multiclass ---------------------------------------------------------------

TEST(ArgmaxRows, PicksLargestPerRow) {
  auto pred = argmax_rows({0.1, 0.7, 0.2, 0.5, 0.3, 0.2}, 3);
  EXPECT_EQ(pred, (std::vector<std::int32_t>{1, 0}));
  EXPECT_THROW(argmax_rows({0.1, 0.2, 0.3}, 2), std::invalid_argument);
}

TEST(ArgmaxRows, RejectsNonFiniteScores) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // An all-NaN row used to silently come out as class 0 (NaN loses every
  // `>` comparison) — a diverged model looked like a confident one.
  EXPECT_THROW(argmax_rows({nan, nan}, 2), std::invalid_argument);
  EXPECT_THROW(argmax_rows({0.2, 0.8, nan, 0.1}, 2), std::invalid_argument);
  EXPECT_THROW(argmax_rows({inf, 0.0}, 2), std::invalid_argument);
  EXPECT_THROW(argmax_rows({-inf, 0.0}, 2), std::invalid_argument);
}

TEST(BinaryAuc, RejectsNonFiniteScores) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(binary_auc({nan, 0.5}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(binary_auc({0.5, std::numeric_limits<double>::infinity()},
                          {1, 0}),
               std::invalid_argument);
  EXPECT_THROW(binary_average_precision({nan, 0.5}, {1, 0}),
               std::invalid_argument);
}

TEST(Multiclass, PerfectClassifierScoresPerfect) {
  // 3 classes, 6 samples, one-hot probabilities matching labels.
  std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2};
  std::vector<double> probs;
  for (auto l : labels)
    for (int c = 0; c < 3; ++c) probs.push_back(c == l ? 0.98 : 0.01);
  auto ev = evaluate_multiclass(probs, 3, labels);
  EXPECT_DOUBLE_EQ(ev.macro_auc, 1.0);
  EXPECT_DOUBLE_EQ(ev.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(ev.macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(ev.accuracy, 1.0);
  for (int c = 0; c < 3; ++c)
    EXPECT_EQ(ev.confusion[c * 3 + c], 2);
}

TEST(Multiclass, UniformPredictorIsChanceLevel) {
  std::vector<std::int32_t> labels = {0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<double> probs(labels.size() * 2, 0.5);
  auto ev = evaluate_multiclass(probs, 2, labels);
  EXPECT_NEAR(ev.macro_auc, 0.5, 1e-12);
}

TEST(Multiclass, HandComputedConfusionAndPrecision) {
  // Predictions: argmax. labels: {0,0,1}, preds: {0,1,1}.
  std::vector<std::int32_t> labels = {0, 0, 1};
  std::vector<double> probs = {0.9, 0.1, 0.2, 0.8, 0.3, 0.7};
  auto ev = evaluate_multiclass(probs, 2, labels);
  EXPECT_EQ(ev.confusion, (std::vector<std::int64_t>{1, 1, 0, 1}));
  // precision: class0 = 1/1, class1 = 1/2; macro = 0.75.
  EXPECT_DOUBLE_EQ(ev.macro_precision, 0.75);
  // recall: class0 = 1/2, class1 = 1/1; macro = 0.75.
  EXPECT_DOUBLE_EQ(ev.macro_recall, 0.75);
  EXPECT_NEAR(ev.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(Multiclass, AbsentClassSkippedInMacroAverages) {
  // Class 2 never appears in labels; macro averages cover classes 0, 1.
  std::vector<std::int32_t> labels = {0, 1, 0, 1};
  std::vector<double> probs = {0.8, 0.1, 0.1, 0.1, 0.8, 0.1,
                               0.8, 0.1, 0.1, 0.1, 0.8, 0.1};
  auto ev = evaluate_multiclass(probs, 3, labels);
  EXPECT_TRUE(std::isnan(ev.per_class_auc[2]));
  EXPECT_DOUBLE_EQ(ev.macro_auc, 1.0);
  EXPECT_DOUBLE_EQ(ev.macro_precision, 1.0);
}

TEST(Multiclass, OneVsRestMatchesManualBinaryReduction) {
  std::vector<std::int32_t> labels = {0, 1, 2, 1};
  std::vector<double> probs = {0.6, 0.3, 0.1, 0.2, 0.5, 0.3,
                               0.1, 0.2, 0.7, 0.4, 0.4, 0.2};
  const double auc1 = one_vs_rest_auc(probs, 3, labels, 1);
  std::vector<double> scores = {0.3, 0.5, 0.2, 0.4};
  std::vector<std::int32_t> binary = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(auc1, binary_auc(scores, binary));
  EXPECT_THROW(one_vs_rest_auc(probs, 3, labels, 5), std::invalid_argument);
}

TEST(Multiclass, NeverPredictedClassCountsZeroTowardMacroPrecision) {
  // Class 2 appears in the truth but argmax never picks it: its precision is
  // undefined (NaN in per_class_precision) and counts 0 toward the macro
  // mean (sklearn zero_division=0) — never NaN-poisoning the aggregate.
  const std::vector<double> probs = {0.8, 0.1, 0.1,   // truth 0 -> pred 0
                                     0.7, 0.2, 0.1,   // truth 0 -> pred 0
                                     0.2, 0.7, 0.1,   // truth 1 -> pred 1
                                     0.6, 0.3, 0.1,   // truth 1 -> pred 0
                                     0.3, 0.6, 0.1};  // truth 2 -> pred 1
  const std::vector<std::int32_t> labels = {0, 0, 1, 1, 2};
  const auto ev = evaluate_multiclass(probs, 3, labels);
  EXPECT_TRUE(std::isnan(ev.per_class_precision[2]));
  EXPECT_DOUBLE_EQ(ev.per_class_precision[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ev.per_class_precision[1], 0.5);
  EXPECT_DOUBLE_EQ(ev.macro_precision, (2.0 / 3.0 + 0.5 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(ev.macro_recall, (1.0 + 0.5 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(ev.accuracy, 0.6);
  EXPECT_FALSE(std::isnan(ev.macro_f1));
  // Confusion stays consistent: row c sums to the truth count of c, the
  // never-predicted class has an all-zero column, total is n.
  std::int64_t total = 0;
  const std::int64_t truth_counts[3] = {2, 2, 1};
  for (int c = 0; c < 3; ++c) {
    std::int64_t row = 0;
    for (int o = 0; o < 3; ++o) row += ev.confusion[c * 3 + o];
    EXPECT_EQ(row, truth_counts[c]);
    total += row;
    EXPECT_EQ(ev.confusion[c * 3 + 2], 0);  // column of class 2
  }
  EXPECT_EQ(total, 5);
}

TEST(Multiclass, AllIdenticalScoresAreChanceAuc) {
  // Fully uninformative scores: every one-vs-rest ranking is all ties, so
  // per-class and macro AUC are exactly 0.5; argmax resolves ties to class
  // 0, so class 1 is never predicted (NaN precision, 0 toward the macro).
  const std::vector<double> probs(8, 0.5);  // 4 rows x 2 classes
  const std::vector<std::int32_t> labels = {0, 1, 0, 1};
  const auto ev = evaluate_multiclass(probs, 2, labels);
  EXPECT_DOUBLE_EQ(ev.per_class_auc[0], 0.5);
  EXPECT_DOUBLE_EQ(ev.per_class_auc[1], 0.5);
  EXPECT_DOUBLE_EQ(ev.macro_auc, 0.5);
  EXPECT_DOUBLE_EQ(ev.accuracy, 0.5);
  EXPECT_TRUE(std::isnan(ev.per_class_precision[1]));
  EXPECT_DOUBLE_EQ(ev.macro_precision, 0.25);
}

TEST(Multiclass, SingleClassLabelsRejected) {
  std::vector<std::int32_t> labels = {1, 1};
  std::vector<double> probs = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(evaluate_multiclass(probs, 2, labels), std::invalid_argument);
}

TEST(Multiclass, ValidatesShapes) {
  EXPECT_THROW(evaluate_multiclass({0.5, 0.5}, 2, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_multiclass({0.5, 0.5, 0.5, 0.5}, 2, {0, 3}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_multiclass({}, 2, {}), std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn::metrics
