// KnowledgeGraph container + traversal tests.
#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "graph/traversal.h"
#include "test_util.h"

namespace amdgcnn::graph {
namespace {

TEST(KnowledgeGraph, BuildAndQuery) {
  KnowledgeGraph g(2, 3, /*edge_attr_dim=*/2, /*node_feat_dim=*/2);
  const auto a = g.add_node(0);
  const auto b = g.add_node(1);
  const auto c = g.add_node(1);
  g.set_node_features(b, std::vector<double>{0.5, -1.0});
  g.set_edge_type_attr(1, std::vector<double>{1.0, 0.0});
  const auto e0 = g.add_edge(a, b, 1);
  g.add_edge(b, c, 2);
  g.finalize();

  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.node_type(a), 0);
  EXPECT_EQ(g.node_type(c), 1);
  EXPECT_EQ(g.degree(b), 2);
  EXPECT_EQ(g.degree(a), 1);
  EXPECT_EQ(g.find_edge(a, b), e0);
  EXPECT_EQ(g.find_edge(b, a), e0);  // undirected
  EXPECT_EQ(g.find_edge(a, c), -1);
  EXPECT_TRUE(g.has_edge(b, c));
  EXPECT_EQ(g.edge(e0).type, 1);

  auto attr = g.edge_attr(e0);
  ASSERT_EQ(attr.size(), 2u);
  EXPECT_EQ(attr[0], 1.0);
  auto nf = g.node_features(b);
  EXPECT_EQ(nf[1], -1.0);
  // Unset features default to zero.
  EXPECT_EQ(g.node_features(a)[0], 0.0);
}

TEST(KnowledgeGraph, NeighborsListBothEndpoints) {
  auto g = testing::triangle_with_tail();
  auto n2 = g.neighbors(2);
  EXPECT_EQ(n2.size(), 3u);  // 0, 1, 3
  bool saw0 = false, saw1 = false, saw3 = false;
  for (const auto& adj : n2) {
    saw0 = saw0 || adj.node == 0;
    saw1 = saw1 || adj.node == 1;
    saw3 = saw3 || adj.node == 3;
  }
  EXPECT_TRUE(saw0 && saw1 && saw3);
}

TEST(KnowledgeGraph, TypeCounts) {
  KnowledgeGraph g(3, 2);
  g.add_node(0);
  g.add_node(2);
  g.add_node(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.finalize();
  EXPECT_EQ(g.node_type_counts(), (std::vector<std::int64_t>{1, 0, 2}));
  EXPECT_EQ(g.edge_type_counts(), (std::vector<std::int64_t>{0, 2}));
}

TEST(KnowledgeGraph, ValidationErrors) {
  KnowledgeGraph g(2, 2, 2, 2);
  const auto a = g.add_node(0);
  const auto b = g.add_node(1);
  EXPECT_THROW(g.add_node(2), std::invalid_argument);       // bad type
  EXPECT_THROW(g.add_edge(a, a, 0), std::invalid_argument); // self loop
  EXPECT_THROW(g.add_edge(a, 7, 0), std::invalid_argument); // bad endpoint
  EXPECT_THROW(g.add_edge(a, b, 5), std::invalid_argument); // bad edge type
  EXPECT_THROW(g.set_node_features(a, std::vector<double>{1.0}),
               std::invalid_argument);                      // wrong width
  EXPECT_THROW(g.neighbors(a), std::logic_error);           // not finalized
  g.add_edge(a, b, 0);
  g.finalize();
  EXPECT_THROW(g.finalize(), std::logic_error);             // double finalize
  EXPECT_THROW(g.add_node(0), std::logic_error);            // frozen
  EXPECT_THROW(g.add_edge(a, b, 0), std::logic_error);
}

TEST(KnowledgeGraph, ZeroAttrDimsReturnEmptySpans) {
  auto g = testing::path_graph(3);
  EXPECT_EQ(g.edge_attr(0).size(), 0u);
  EXPECT_EQ(g.node_features(0).size(), 0u);
}

TEST(Bfs, DistancesOnPath) {
  auto g = testing::path_graph(5);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(Bfs, MaxDepthTruncates) {
  auto g = testing::path_graph(5);
  BfsOptions opts;
  opts.max_depth = 2;
  auto d = bfs_distances(g, 0, opts);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, kUnreachable, kUnreachable}));
}

TEST(Bfs, MaskedEdgeBlocksPath) {
  auto g = testing::path_graph(3);
  BfsOptions opts;
  opts.masked_edge = g.find_edge(0, 1);
  auto d = bfs_distances(g, 0, opts);
  EXPECT_EQ(d[1], kUnreachable);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, MaskedNodeActsRemoved) {
  auto g = testing::triangle_with_tail();
  BfsOptions opts;
  opts.masked_node = 2;
  auto d = bfs_distances(g, 0, opts);
  EXPECT_EQ(d[1], 1);               // via direct edge 0-1
  EXPECT_EQ(d[2], kUnreachable);    // removed
  EXPECT_EQ(d[3], kUnreachable);    // only reachable through 2
}

TEST(Bfs, MaskedSourceYieldsAllUnreachable) {
  auto g = testing::path_graph(3);
  BfsOptions opts;
  opts.masked_node = 0;
  auto d = bfs_distances(g, 0, opts);
  for (auto v : d) EXPECT_EQ(v, kUnreachable);
}

TEST(KHop, CollectsExactNeighborhood) {
  auto g = testing::path_graph(7);
  auto nodes = k_hop_nodes(g, 3, 2);
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(ShortestPath, MatchesBfs) {
  auto g = testing::triangle_with_tail();
  EXPECT_EQ(shortest_path_length(g, 0, 3), 2);
  EXPECT_EQ(shortest_path_length(g, 0, 0), 0);
  BfsOptions opts;
  opts.masked_node = 2;
  EXPECT_EQ(shortest_path_length(g, 0, 3, opts), kUnreachable);
}

}  // namespace
}  // namespace amdgcnn::graph
