// Dtype-generic engine tests: f32 storage end-to-end.
//
// Covers the ops::cast boundary, f32 gradchecks of the GNN layers (with
// single-precision tolerances derived in test_util.h), f32/f64 checkpoint
// round-trips plus the v1 backward-compat fixture, dtype/trailing-byte
// rejection, and the bit-determinism contract of the parallel trainer at
// f32.  Built into its own binary so `ctest -L dtype` runs exactly this
// file (tests/CMakeLists.txt labels it `unit;dtype`).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "models/dgcnn.h"
#include "models/serialize.h"
#include "models/trainer.h"
#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---- ops::cast ----------------------------------------------------------------

TEST(Cast, MatchingDtypeSharesTheTapeNode) {
  util::Rng rng(1);
  auto a = ag::Tensor::randn({2, 3}, rng);
  auto b = ag::ops::cast(a, ag::Dtype::f64);
  EXPECT_EQ(a.impl(), b.impl());
  auto c = ag::Tensor::randn({2, 3}, rng, ag::Dtype::f32);
  EXPECT_EQ(c.impl(), ag::ops::cast(c, ag::Dtype::f32).impl());
}

TEST(Cast, NarrowThenWidenRoundsToF32Values) {
  auto a = ag::Tensor::from_data({3}, {0.1, -2.5, 1e-20});
  auto narrow = ag::ops::cast(a, ag::Dtype::f32);
  auto wide = ag::ops::cast(narrow, ag::Dtype::f64);
  EXPECT_EQ(wide.dtype(), ag::Dtype::f64);
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_EQ(wide.item(i), static_cast<double>(static_cast<float>(a.item(i))));
}

TEST(Cast, GradientFlowsAcrossThePrecisionBoundary) {
  // f64 leaf -> f32 compute -> scalar loss: the widened gradient must land
  // in the f64 grad buffer.  d/da mean(cast(a)^2) = 2a/n.
  auto a = ag::Tensor::from_data({2}, {1.0, -3.0});
  a.requires_grad(true);
  auto b = ag::ops::cast(a, ag::Dtype::f32);
  auto loss = ag::ops::mean(ag::ops::mul(b, b));
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 1.0, 1e-6);
  EXPECT_NEAR(a.grad()[1], -3.0, 1e-6);
}

// ---- f32 gradchecks -----------------------------------------------------------

TEST(DtypeGradcheck, LinearF32) {
  util::Rng rng(2);
  nn::Linear lin(3, 2, /*bias=*/true, rng, ag::Dtype::f32);
  util::Rng data_rng(3);
  auto x = ag::Tensor::randn({4, 3}, data_rng, ag::Dtype::f32);
  auto loss_fn = [&] {
    auto y = lin.forward(x);
    return ag::ops::mean(ag::ops::mul(y, y));
  };
  for (auto p : lin.parameters())
    testing::expect_gradient_matches_f32(p, loss_fn);
}

TEST(DtypeGradcheck, GcnF32) {
  util::Rng rng(4);
  nn::GCNConv gcn(2, 3, rng, ag::Dtype::f32);
  util::Rng data_rng(5);
  auto x = ag::Tensor::randn({4, 2}, data_rng, ag::Dtype::f32);
  std::vector<std::int64_t> src = {0, 1, 1, 2, 2, 3};
  std::vector<std::int64_t> dst = {1, 0, 2, 1, 3, 2};
  auto loss_fn = [&] {
    auto out = gcn.forward(x, src, dst, 4);
    return ag::ops::mean(ag::ops::mul(out, out));
  };
  for (auto p : gcn.parameters())
    testing::expect_gradient_matches_f32(p, loss_fn);
}

TEST(DtypeGradcheck, GatF32) {
  util::Rng rng(6);
  nn::GATConv gat(2, 2, /*heads=*/1, /*edge_attr_dim=*/2, rng,
                  /*negative_slope=*/0.2, ag::Dtype::f32);
  util::Rng data_rng(7);
  auto x = ag::Tensor::randn({3, 2}, data_rng, ag::Dtype::f32);
  // Edge attributes stay f64 on purpose: the layer casts them at its
  // boundary, so this also exercises the dataset-precision bridge.
  auto ea = ag::Tensor::randn({4, 2}, data_rng);
  std::vector<std::int64_t> src = {0, 1, 1, 2};
  std::vector<std::int64_t> dst = {1, 0, 2, 1};
  auto loss_fn = [&] {
    auto out = gat.forward(x, src, dst, ea, 3);
    return ag::ops::mean(ag::ops::mul(out, out));
  };
  for (auto p : gat.parameters())
    testing::expect_gradient_matches_f32(p, loss_fn);
}

// ---- Model-level fixtures -----------------------------------------------------

seal::SubgraphSample probe_sample() {
  seal::SubgraphSample s;
  s.num_nodes = 3;
  s.label = 0;
  s.node_feat = ag::Tensor::from_data({3, 4}, {1, 0, 0, 0, 0, 1, 0, 0,
                                               0, 0, 1, 0});
  s.src = {0, 1, 1, 2};
  s.dst = {1, 0, 2, 1};
  s.edge_attr = ag::Tensor::from_data({4, 2}, {1, 0, 1, 0, 0, 1, 0, 1});
  return s;
}

models::ModelConfig probe_config(ag::Dtype dtype) {
  models::ModelConfig mc;
  mc.kind = models::GnnKind::kAMDGCNN;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 3;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dropout = 0.0;
  mc.dtype = dtype;
  return mc;
}

TEST(DtypeModel, F32TwinTracksF64ModelClosely) {
  // randn/xavier draw f64 from the RNG and narrow, so equal seeds give the
  // f32 model bit-rounded copies of the f64 weights; the forward passes may
  // then only drift by single-precision rounding.
  util::Rng rng64(8), rng32(8), fwd(9);
  models::DGCNN m64(probe_config(ag::Dtype::f64), rng64);
  models::DGCNN m32(probe_config(ag::Dtype::f32), rng32);
  m64.set_training(false);
  m32.set_training(false);
  const auto sample = probe_sample();
  auto out64 = m64.forward(sample, fwd);
  auto out32 = m32.forward(sample, fwd);
  ASSERT_EQ(out32.dtype(), ag::Dtype::f32);
  for (std::int64_t i = 0; i < out64.numel(); ++i)
    EXPECT_NEAR(out32.item(i), out64.item(i), 1e-4);
}

// ---- Checkpoint round-trips ---------------------------------------------------

void roundtrip_reproduces_predictions(ag::Dtype dtype, const char* file) {
  const auto path = temp_path(file);
  util::Rng rng_a(10), rng_b(11), fwd(12);
  models::DGCNN original(probe_config(dtype), rng_a);
  models::DGCNN restored(probe_config(dtype), rng_b);
  original.set_training(false);
  restored.set_training(false);
  const auto sample = probe_sample();
  const auto target = original.forward(sample, fwd);

  models::save_weights(original, path);
  models::load_weights(restored, path);
  const auto after = restored.forward(sample, fwd);
  // Raw bytes round-trip, so the restored forward is bit-identical.
  for (std::int64_t i = 0; i < target.numel(); ++i)
    EXPECT_EQ(after.item(i), target.item(i));
  std::remove(path.c_str());
}

TEST(DtypeSerialize, RoundTripF64) {
  roundtrip_reproduces_predictions(ag::Dtype::f64, "amdgcnn_rt_f64.bin");
}

TEST(DtypeSerialize, RoundTripF32) {
  roundtrip_reproduces_predictions(ag::Dtype::f32, "amdgcnn_rt_f32.bin");
}

TEST(DtypeSerialize, RejectsDtypeMismatch) {
  const auto path = temp_path("amdgcnn_dtype_mismatch.bin");
  util::Rng rng(13);
  nn::MLP mlp32({4, 4, 2}, 0.0, rng, ag::Dtype::f32);
  models::save_weights(mlp32, path);
  nn::MLP mlp64({4, 4, 2}, 0.0, rng);
  try {
    models::load_weights(mlp64, path);
    FAIL() << "expected dtype mismatch to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dtype mismatch"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(DtypeSerialize, RejectsTrailingGarbage) {
  const auto path = temp_path("amdgcnn_trailing.bin");
  util::Rng rng(14);
  nn::MLP mlp({4, 4, 2}, 0.0, rng);
  models::save_weights(mlp, path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  try {
    models::load_weights(mlp, path);
    FAIL() << "expected trailing bytes to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(DtypeSerialize, V1CheckpointStillLoadsAsF64) {
  // Fixture written by the pre-dtype serializer (format v1, implicit f64)
  // from nn::MLP({4, 4, 2}, 0.0, util::Rng(6)) — the exact bytes a user's
  // old checkpoint would hold.
  const std::string path =
      std::string(AMDGCNN_TEST_DATA_DIR) + "/v1_mlp_seed6.bin";
  util::Rng fixture_rng(6);
  nn::MLP expected({4, 4, 2}, 0.0, fixture_rng);

  util::Rng other_rng(15);
  nn::MLP loaded({4, 4, 2}, 0.0, other_rng);
  models::load_weights(loaded, path);
  const auto ep = expected.parameters();
  const auto lp = loaded.parameters();
  ASSERT_EQ(ep.size(), lp.size());
  // The loaded side is the fixture's stored f64 bytes verbatim; the expected
  // side re-runs parameter init, whose last bits vary with compile flags
  // (FP contraction differs between the Release and sanitizer trees), so
  // compare within a few ulps rather than bitwise.
  for (std::size_t i = 0; i < ep.size(); ++i) {
    const auto& e = ep[i].data();
    const auto& l = lp[i].data();
    ASSERT_EQ(e.size(), l.size()) << "parameter " << i;
    for (std::size_t j = 0; j < e.size(); ++j)
      EXPECT_NEAR(e[j], l[j], 1e-12) << "parameter " << i << "[" << j << "]";
  }

  // The same v1 file must not be reinterpreted into an f32 model.
  nn::MLP mlp32({4, 4, 2}, 0.0, other_rng, ag::Dtype::f32);
  EXPECT_THROW(models::load_weights(mlp32, path), std::runtime_error);
}

// ---- Trainer ------------------------------------------------------------------

seal::SubgraphSample toy_sample(std::int64_t leaves, double attr_value,
                                std::int32_t label) {
  seal::SubgraphSample s;
  s.num_nodes = leaves + 1;
  s.label = label;
  const std::int64_t f = 4;
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f), 0.0);
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    feat[i * f + (i == 0 ? 0 : 1)] = 1.0;
  s.node_feat = ag::Tensor::from_data({s.num_nodes, f}, std::move(feat));
  std::vector<double> ea;
  for (std::int64_t l = 1; l <= leaves; ++l) {
    s.src.push_back(0);
    s.dst.push_back(l);
    s.src.push_back(l);
    s.dst.push_back(0);
    for (int rep = 0; rep < 2; ++rep) {
      ea.push_back(attr_value);
      ea.push_back(1.0 - attr_value);
    }
  }
  s.edge_attr = ag::Tensor::from_data(
      {static_cast<std::int64_t>(s.src.size()), 2}, std::move(ea));
  return s;
}

std::vector<seal::SubgraphSample> toy_dataset() {
  std::vector<seal::SubgraphSample> train;
  for (int i = 0; i < 30; ++i)
    train.push_back(toy_sample(2 + i % 5, (i % 2) ? 0.9 : 0.1, i % 2));
  return train;
}

models::ModelConfig toy_config(ag::Dtype dtype) {
  models::ModelConfig mc;
  mc.kind = models::GnnKind::kAMDGCNN;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 2;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dense_dim = 16;
  mc.dtype = dtype;
  return mc;
}

TEST(DtypeTrainer, RejectsModelTrainConfigDtypeMismatch) {
  util::Rng init(16);
  models::DGCNN model(toy_config(ag::Dtype::f32), init);
  models::TrainConfig tc;  // dtype defaults to f64
  EXPECT_THROW(models::Trainer(model, tc), std::invalid_argument);
}

/// Epoch losses + final flat f32 parameters for a fresh seeded f32 model
/// trained with the given worker count.
std::pair<std::vector<double>, std::vector<float>> train_f32_with_threads(
    std::int64_t num_threads, int epochs) {
  util::Rng init(42);
  models::DGCNN model(toy_config(ag::Dtype::f32), init);
  models::TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.dtype = ag::Dtype::f32;
  tc.num_threads = num_threads;
  models::Trainer trainer(model, tc);
  auto train = toy_dataset();
  std::vector<double> losses;
  for (int e = 0; e < epochs; ++e) losses.push_back(trainer.train_epoch(train));
  std::vector<float> flat;
  for (const auto& p : model.parameters())
    flat.insert(flat.end(), p.data_as<float>().begin(),
                p.data_as<float>().end());
  return {losses, flat};
}

TEST(DtypeTrainer, F32ParallelTrainingIsBitDeterministic) {
  auto [losses1, params1] = train_f32_with_threads(1, 3);
  auto [losses4, params4] = train_f32_with_threads(4, 3);
  ASSERT_EQ(losses1.size(), losses4.size());
  for (std::size_t e = 0; e < losses1.size(); ++e)
    EXPECT_EQ(losses1[e], losses4[e]) << "epoch " << e;
  ASSERT_EQ(params1.size(), params4.size());
  for (std::size_t i = 0; i < params1.size(); ++i)
    ASSERT_EQ(params1[i], params4[i]) << "parameter flat index " << i;
}

TEST(DtypeTrainer, F32TrainingLearns) {
  util::Rng init(43);
  models::DGCNN model(toy_config(ag::Dtype::f32), init);
  models::TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.dtype = ag::Dtype::f32;
  tc.num_threads = 2;
  models::Trainer trainer(model, tc);
  auto train = toy_dataset();
  const double first = trainer.train_epoch(train);
  double last = first;
  for (int e = 0; e < 5; ++e) last = trainer.train_epoch(train);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace amdgcnn
