// Cross-module property tests: invariants that must hold for ANY dataset /
// subgraph / model configuration (parameterized sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>

#include "datasets/biokg_sim.h"
#include "datasets/cora_sim.h"
#include "datasets/kg_generator.h"
#include "datasets/primekg_sim.h"
#include "datasets/wordnet_sim.h"
#include "models/dgcnn.h"
#include "seal/dataset.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

// ---- Dataset-pipeline invariants, swept over all four generators --------------

datasets::LinkDataset make_small(const std::string& name) {
  if (name == "primekg") {
    datasets::PrimeKGSimOptions o;
    o.scale = 0.25;
    o.num_train = 60;
    o.num_test = 20;
    return datasets::make_primekg_sim(o);
  }
  if (name == "biokg") {
    datasets::BioKGSimOptions o;
    o.scale = 0.25;
    o.num_train = 60;
    o.num_test = 20;
    return datasets::make_biokg_sim(o);
  }
  if (name == "wordnet") {
    datasets::WordNetSimOptions o;
    o.num_nodes = 400;
    o.num_train = 60;
    o.num_test = 20;
    return datasets::make_wordnet_sim(o);
  }
  datasets::CoraSimOptions o;
  o.num_nodes = 300;
  o.num_edges = 700;
  o.num_pos_links = 40;
  return datasets::make_cora_sim(o);
}

class DatasetPipelineProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetPipelineProperty, SamplesSatisfySealInvariants) {
  auto data = make_small(GetParam());
  seal::SealDatasetOptions opts;
  opts.extract.mode = data.neighborhood_mode;
  opts.extract.max_nodes = 24;
  opts.features.max_drnl_label = 16;
  auto ds = seal::build_seal_dataset(data.graph, data.train_links,
                                     data.test_links, data.num_classes, opts);
  ASSERT_EQ(ds.train.size(), data.train_links.size());

  const std::int64_t drnl_width = opts.features.max_drnl_label + 1;
  for (const auto* split : {&ds.train, &ds.test}) {
    for (const auto& s : *split) {
      // Size cap respected; targets exist.
      EXPECT_LE(s.num_nodes, 24);
      EXPECT_GE(s.num_nodes, 2);
      EXPECT_EQ(s.node_feat.dim(0), s.num_nodes);
      EXPECT_EQ(s.node_feat.dim(1), ds.node_feature_dim);
      // DRNL block of every row is a valid one-hot.
      for (std::int64_t i = 0; i < s.num_nodes; ++i) {
        double block = 0.0;
        for (std::int64_t c = 0; c < drnl_width; ++c)
          block += s.node_feat.at(i, c);
        EXPECT_EQ(block, 1.0);
      }
      // Targets (rows 0, 1) carry DRNL label 1.
      EXPECT_EQ(s.node_feat.at(0, 1), 1.0);
      EXPECT_EQ(s.node_feat.at(1, 1), 1.0);
      // Edge arrays are aligned, within bounds, and both orientations of
      // each undirected edge appear (even count).
      ASSERT_EQ(s.src.size(), s.dst.size());
      EXPECT_EQ(s.src.size() % 2, 0u);
      for (std::size_t e = 0; e < s.src.size(); ++e) {
        EXPECT_GE(s.src[e], 0);
        EXPECT_LT(s.src[e], s.num_nodes);
        EXPECT_GE(s.dst[e], 0);
        EXPECT_LT(s.dst[e], s.num_nodes);
        EXPECT_NE(s.src[e], s.dst[e]);
      }
      // Edge attribute matrix aligned and one-hot where defined.
      if (ds.edge_attr_dim > 0) {
        ASSERT_TRUE(s.edge_attr.defined());
        ASSERT_EQ(s.edge_attr.dim(0),
                  static_cast<std::int64_t>(s.src.size()));
        for (std::int64_t e = 0; e < s.edge_attr.dim(0); ++e) {
          double row = 0.0;
          for (std::int64_t c = 0; c < ds.edge_attr_dim; ++c)
            row += s.edge_attr.at(e, c);
          EXPECT_EQ(row, 1.0);
        }
      }
      // Label range.
      EXPECT_GE(s.label, 0);
      EXPECT_LT(s.label, ds.num_classes);
    }
  }
}

TEST_P(DatasetPipelineProperty, MaterializedSubgraphPreservesStructure) {
  auto data = make_small(GetParam());
  graph::ExtractOptions eo;
  eo.mode = data.neighborhood_mode;
  eo.max_nodes = 32;
  const auto& link = data.train_links.front();
  auto sub = graph::extract_enclosing_subgraph(data.graph, link.a, link.b, eo);
  auto local = graph::materialize_subgraph(data.graph, sub);
  EXPECT_EQ(local.num_nodes(), sub.num_nodes());
  EXPECT_EQ(local.num_edges(), static_cast<std::int64_t>(sub.edges.size()));
  for (std::size_t i = 0; i < sub.nodes.size(); ++i)
    EXPECT_EQ(local.node_type(static_cast<graph::NodeId>(i)),
              data.graph.node_type(sub.nodes[i]));
  for (const auto& e : sub.edges) {
    const auto local_edge = local.find_edge(e.src, e.dst);
    ASSERT_GE(local_edge, 0);
    EXPECT_EQ(local.edge(local_edge).type, data.graph.edge(e.orig).type);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPipelineProperty,
                         ::testing::Values("primekg", "biokg", "wordnet",
                                           "cora"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- Model invariants ----------------------------------------------------------

/// Permute the node ids of a sample (keeping targets at any position is NOT
/// required by the model — it reads targets through the DRNL feature, so a
/// full permutation is legal).
seal::SubgraphSample permute_sample(const seal::SubgraphSample& s,
                                    const std::vector<std::int64_t>& perm) {
  seal::SubgraphSample out;
  out.num_nodes = s.num_nodes;
  out.label = s.label;
  const std::int64_t f = s.node_feat.dim(1);
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f));
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    for (std::int64_t c = 0; c < f; ++c)
      feat[perm[i] * f + c] = s.node_feat.at(i, c);
  out.node_feat = ag::Tensor::from_data({s.num_nodes, f}, std::move(feat));
  out.src.resize(s.src.size());
  out.dst.resize(s.dst.size());
  for (std::size_t e = 0; e < s.src.size(); ++e) {
    out.src[e] = perm[s.src[e]];
    out.dst[e] = perm[s.dst[e]];
  }
  out.edge_attr = s.edge_attr;
  return out;
}

class ModelInvariance : public ::testing::TestWithParam<models::GnnKind> {};

TEST_P(ModelInvariance, LogitsInvariantToNodeRelabeling) {
  auto data = make_small("biokg");
  seal::SealDatasetOptions opts;
  opts.extract.max_nodes = 20;
  auto ds = seal::build_seal_dataset(data.graph, data.train_links, {},
                                     data.num_classes, opts);

  models::ModelConfig mc;
  mc.kind = GetParam();
  mc.node_feature_dim = ds.node_feature_dim;
  mc.edge_attr_dim = ds.edge_attr_dim;
  mc.num_classes = ds.num_classes;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dropout = 0.0;
  util::Rng rng(3);
  models::DGCNN model(mc, rng);
  model.set_training(false);

  util::Rng perm_rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto& s = ds.train[trial];
    std::vector<std::int64_t> perm(static_cast<std::size_t>(s.num_nodes));
    std::iota(perm.begin(), perm.end(), std::int64_t{0});
    perm_rng.shuffle(perm);
    const auto permuted = permute_sample(s, perm);
    util::Rng f1(1), f2(1);
    auto a = model.forward(s, f1);
    auto b = model.forward(permuted, f2);
    for (std::int64_t c = 0; c < mc.num_classes; ++c)
      EXPECT_NEAR(a.item(c), b.item(c), 1e-9)
          << "model must be permutation invariant";
  }
}

TEST_P(ModelInvariance, LogitsInvariantToEdgeOrderShuffle) {
  auto data = make_small("wordnet");
  seal::SealDatasetOptions opts;
  opts.extract.max_nodes = 20;
  auto ds = seal::build_seal_dataset(data.graph, data.train_links, {},
                                     data.num_classes, opts);
  models::ModelConfig mc;
  mc.kind = GetParam();
  mc.node_feature_dim = ds.node_feature_dim;
  mc.edge_attr_dim = ds.edge_attr_dim;
  mc.num_classes = ds.num_classes;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dropout = 0.0;
  util::Rng rng(7);
  models::DGCNN model(mc, rng);
  model.set_training(false);

  const auto& s = ds.train.front();
  // Reverse the edge list (keeping attr rows aligned).
  seal::SubgraphSample reversed = s;
  std::reverse(reversed.src.begin(), reversed.src.end());
  std::reverse(reversed.dst.begin(), reversed.dst.end());
  if (s.edge_attr.defined() && s.edge_attr.dim(0) > 0) {
    const std::int64_t e = s.edge_attr.dim(0), d = s.edge_attr.dim(1);
    std::vector<double> attr(static_cast<std::size_t>(e * d));
    for (std::int64_t i = 0; i < e; ++i)
      for (std::int64_t c = 0; c < d; ++c)
        attr[(e - 1 - i) * d + c] = s.edge_attr.at(i, c);
    reversed.edge_attr = ag::Tensor::from_data({e, d}, std::move(attr));
  }
  util::Rng f1(1), f2(1);
  auto a = model.forward(s, f1);
  auto b = model.forward(reversed, f2);
  for (std::int64_t c = 0; c < mc.num_classes; ++c)
    EXPECT_NEAR(a.item(c), b.item(c), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, ModelInvariance,
                         ::testing::Values(models::GnnKind::kVanillaDGCNN,
                                           models::GnnKind::kAMDGCNN),
                         [](const auto& info) {
                           return std::string(
                               models::gnn_kind_name(info.param) ==
                                       std::string("AM-DGCNN")
                                   ? "AM"
                                   : "Vanilla");
                         });

// ---- Segment softmax shift invariance -------------------------------------------

TEST(SegmentSoftmaxProperty, InvariantToPerSegmentShift) {
  util::Rng rng(11);
  auto scores = ag::Tensor::randn({6, 2}, rng);
  std::vector<std::int64_t> seg = {0, 1, 0, 1, 2, 2};
  auto base = ag::ops::segment_softmax(scores, seg, 3);
  // Add a constant per segment (same across heads).
  auto shifted_data = scores.data();
  const double shift[3] = {5.0, -3.0, 100.0};
  for (int e = 0; e < 6; ++e)
    for (int h = 0; h < 2; ++h) shifted_data[e * 2 + h] += shift[seg[e]];
  auto shifted = ag::Tensor::from_data({6, 2}, shifted_data);
  auto out = ag::ops::segment_softmax(shifted, seg, 3);
  for (std::int64_t i = 0; i < base.numel(); ++i)
    EXPECT_NEAR(base.item(i), out.item(i), 1e-12);
}

// ---- Dynamic-graph structural invariants -----------------------------------

/// Any sequence of overlay mutations leaves the adjacency view structurally
/// sound: symmetric, duplicate-free, tombstone-free, and in bijection with
/// the live edge records.  200 randomized (graph, update-sequence) trials.
TEST(DynamicGraphProperty, OverlayAdjacencyStaysStructurallySound) {
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    auto g = datasets::make_random_kg(testing::random_kg_options(trial + 7));
    testing::UpdateSequenceOptions uo;
    uo.count = 35;
    uo.seed = trial + 1;
    testing::apply_updates(g, testing::make_update_sequence(g, uo));
    if (trial % 4 == 2) g.compact();

    std::int64_t degree_sum = 0;
    std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
    for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
         ++v) {
      ASSERT_EQ(g.degree(v), static_cast<std::int64_t>(g.neighbors(v).size()))
          << "trial " << trial;
      degree_sum += g.degree(v);
      for (const auto& adj : g.neighbors(v)) {
        ASSERT_FALSE(g.edge_removed(adj.edge))
            << "trial " << trial << ": tombstone in adjacency of " << v;
        const auto& rec = g.edge(adj.edge);
        ASSERT_TRUE((rec.src == v && rec.dst == adj.node) ||
                    (rec.dst == v && rec.src == adj.node))
            << "trial " << trial << ": record/adjacency mismatch";
        ASSERT_TRUE(seen.emplace(std::min(v, adj.node),
                                 std::max(v, adj.node)).second ||
                    v > adj.node)
            << "trial " << trial << ": duplicate edge in adjacency";
        // Symmetry: the reverse direction lists the same edge id.
        ASSERT_EQ(g.find_edge(adj.node, v), adj.edge) << "trial " << trial;
      }
    }
    // Handshake: every live edge appears from exactly both endpoints.
    ASSERT_EQ(degree_sum, 2 * g.num_live_edges()) << "trial " << trial;
    ASSERT_EQ(static_cast<std::int64_t>(seen.size()), g.num_live_edges())
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace amdgcnn
