// Serving-runtime tests (DESIGN.md §2.8): the persistent WorkerPool, the
// batched endpoint-grouped Server pipeline and its three cache layers.
//
// Headline invariants:
//   (1) Pool fork-join correctness — every item runs exactly once, worker
//       indices stay in range, failures surface as util::WorkerError with
//       the LOWEST failing item for any worker count, and the lifecycle
//       negative paths (double shutdown, run-after-shutdown) are typed.
//   (2) Byte equivalence — a batch scored through the Server is bitwise
//       identical to the serial cold predict_links path (exact schemes) and
//       invariant to the worker count (every scheme, including f16/q8),
//       duplicates and all.
//   (3) Cache coherence — the cross-query score/frontier caches never
//       change bytes under randomized mutation/query interleavings; the
//       node-row cache reproduces build_sample exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/seal_link_classifier.h"
#include "datasets/wordnet_sim.h"
#include "graph/knowledge_graph.h"
#include "graph/subgraph.h"
#include "seal/feature_builder.h"
#include "serve/lru_cache.h"
#include "serve/server.h"
#include "serve/worker_pool.h"
#include "test_util.h"
#include "util/parallel_error.h"

namespace amdgcnn {
namespace {

using testing::random_links;

// ---- WorkerPool: fork-join correctness -------------------------------------

TEST(WorkerPoolRun, EveryItemRunsOnceAndWorkerIndicesAreInRange) {
  serve::WorkerPool pool(3);
  constexpr std::int64_t kItems = 200;
  std::vector<std::atomic<int>> runs(kItems);
  std::atomic<bool> worker_in_range{true};
  pool.run("test", kItems, [&](std::int64_t item, int worker) {
    if (worker < 0 || worker >= 3) worker_in_range = false;
    runs[static_cast<std::size_t>(item)].fetch_add(1);
  });
  EXPECT_TRUE(worker_in_range);
  for (std::int64_t i = 0; i < kItems; ++i)
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

TEST(WorkerPoolRun, PoolIsReusableAcrossJobs) {
  serve::WorkerPool pool(2);
  std::atomic<std::int64_t> total{0};
  for (int job = 0; job < 5; ++job)
    pool.run("test", 40, [&](std::int64_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200);
}

TEST(WorkerPoolRun, EmptyJobIsANoop) {
  serve::WorkerPool pool(2);
  pool.run("test", 0, [&](std::int64_t, int) { FAIL() << "ran an item"; });
  pool.run("test", -3, [&](std::int64_t, int) { FAIL() << "ran an item"; });
}

TEST(WorkerPoolRun, LowestFailingItemWinsForAnyWorkerCount) {
  for (const int workers : {1, 2, 4}) {
    serve::WorkerPool pool(workers);
    try {
      pool.run("stage", 100, [](std::int64_t item, int) {
        if (item == 13 || item == 57 || item == 91)
          throw std::runtime_error("boom " + std::to_string(item));
      });
      FAIL() << "expected WorkerError (workers=" << workers << ")";
    } catch (const util::WorkerError& e) {
      EXPECT_EQ(e.item(), 13) << "workers=" << workers;
      EXPECT_NE(std::string(e.what()).find("stage: worker failed at item 13"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("boom 13"), std::string::npos);
    }
    // The pool survives a failing job.
    std::atomic<std::int64_t> total{0};
    pool.run("test", 10, [&](std::int64_t, int) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 10);
  }
}

// ---- WorkerPool: lifecycle negative paths ----------------------------------

TEST(WorkerPoolLifecycle, ZeroWorkersIsRejected) {
  EXPECT_THROW(serve::WorkerPool(0), serve::ServeError);
  EXPECT_THROW(serve::WorkerPool(-2), serve::ServeError);
}

TEST(WorkerPoolLifecycle, DoubleShutdownIsIdempotent) {
  serve::WorkerPool pool(2);
  EXPECT_FALSE(pool.closed());
  pool.shutdown();
  EXPECT_TRUE(pool.closed());
  pool.shutdown();  // second call returns immediately
  EXPECT_TRUE(pool.closed());
}

TEST(WorkerPoolLifecycle, RunAfterShutdownThrowsServeError) {
  serve::WorkerPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.run("test", 4, [](std::int64_t, int) {}),
               serve::ServeError);
}

// ---- LruCache --------------------------------------------------------------

TEST(LruCache, EvictsColdEndAndRefreshesOnFind) {
  serve::LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  ASSERT_NE(cache.find(1), nullptr);  // 1 becomes MRU; 2 is now coldest
  cache.insert(3, 30);                // evicts 2
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_EQ(*cache.find(1), 10);
  EXPECT_EQ(*cache.find(3), 30);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.evictions(), 1);  // erase() is not an eviction
  EXPECT_EQ(cache.size(), 1u);
}

// ---- Trained-classifier fixture --------------------------------------------

struct ServeFixture {
  datasets::LinkDataset data;
  core::ClassifierConfig cfg;
  std::unique_ptr<core::SealLinkClassifier> clf;

  ServeFixture() {
    datasets::WordNetSimOptions o;
    o.num_nodes = 200;
    o.num_train = 40;
    o.num_test = 15;
    o.mean_degree = 5.0;
    data = datasets::make_wordnet_sim(o);

    cfg.model.kind = models::GnnKind::kAMDGCNN;
    cfg.model.hidden_dim = 8;
    cfg.model.heads = 2;
    cfg.model.num_layers = 2;
    cfg.model.sort_k = 10;
    cfg.training.epochs = 1;
    cfg.dataset.extract.max_nodes = 24;
    cfg.dataset.features.max_drnl_label = 16;
    clf = std::make_unique<core::SealLinkClassifier>(cfg);
    clf->fit(data.graph, data.train_links, data.num_classes);
  }

  core::LinkPredictor predictor(
      ag::quant::Scheme quantize = ag::quant::Scheme::kNone) const {
    core::LinkPredictor::Options po;
    po.dataset = cfg.dataset;
    po.quantize = quantize;
    return core::LinkPredictor(clf->model(), po);
  }
};

void expect_predictions_bitwise_equal(const core::LinkPredictions& got,
                                      const core::LinkPredictions& want,
                                      const std::string& tag) {
  ASSERT_EQ(got.proba.size(), want.proba.size()) << tag;
  ASSERT_EQ(0, std::memcmp(got.proba.data(), want.proba.data(),
                           want.proba.size() * sizeof(double)))
      << tag;
  ASSERT_EQ(got.labels, want.labels) << tag;
}

// ---- Server: byte equivalence ----------------------------------------------

TEST(ServerScore, BatchesMatchSerialColdPathBitwiseForAnyWorkerCount) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  const auto links = random_links(fx.data.graph, 24, fx.data.num_classes, 11);
  const auto want = predictor.predict_links(fx.data.graph, links);

  for (const int workers : {1, 2, 4}) {
    serve::ServerOptions so;
    so.num_workers = workers;
    serve::Server server(predictor, fx.data.graph, so);
    expect_predictions_bitwise_equal(
        server.score_batch(links), want,
        "workers=" + std::to_string(workers));
    // A second pass is served from the score cache — still the same bytes.
    expect_predictions_bitwise_equal(
        server.score_batch(links), want,
        "workers=" + std::to_string(workers) + " warm");
    const auto s = server.stats();
    EXPECT_EQ(s.links, 48);
    EXPECT_GT(s.score_hits, 0) << "workers=" << workers;
    EXPECT_EQ(s.scored, s.score_misses);
  }
}

TEST(ServerScore, QuantizedSchemesAreWorkerCountInvariant) {
  ServeFixture fx;
  const auto links = random_links(fx.data.graph, 16, fx.data.num_classes, 23);
  for (const auto scheme :
       {ag::quant::Scheme::kNone, ag::quant::Scheme::kF16,
        ag::quant::Scheme::kQ8}) {
    const auto predictor = fx.predictor(scheme);
    const std::string tag = ag::quant::scheme_name(scheme);
    // The per-scheme reference: the Server must reproduce the predictor's
    // own serial path bytes (exact for kNone, relaxed-numerics for f16/q8 —
    // but still deterministic), for every worker count.
    const auto want = predictor.predict_links(fx.data.graph, links);
    for (const int workers : {1, 3}) {
      serve::ServerOptions so;
      so.num_workers = workers;
      serve::Server server(predictor, fx.data.graph, so);
      expect_predictions_bitwise_equal(
          server.score_batch(links), want,
          tag + " workers=" + std::to_string(workers));
    }
  }
}

TEST(ServerScore, DuplicateLinksAreDedupedAndFannedOutInInputOrder) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  const auto base = random_links(fx.data.graph, 6, fx.data.num_classes, 31);
  std::vector<seal::LinkExample> links;
  for (int r = 0; r < 4; ++r)
    links.insert(links.end(), base.begin(), base.end());
  const auto want = predictor.predict_links(fx.data.graph, links);

  serve::ServerOptions so;
  so.num_workers = 2;
  serve::Server server(predictor, fx.data.graph, so);
  expect_predictions_bitwise_equal(server.score_batch(links), want, "dedup");
  const auto s = server.stats();
  EXPECT_EQ(s.links, 24);
  EXPECT_EQ(s.deduped, 18);  // 6 distinct pairs, 3 repeats each
  EXPECT_EQ(s.scored, 6);
}

TEST(ServerScore, SharedEndpointBatchesHitTheEndpointAndRowCaches) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  // A candidate fan: one hot source against many destinations, non-edges
  // favoured so the unmasked frontier path (the cacheable one) dominates.
  std::vector<seal::LinkExample> fan;
  const graph::NodeId source = 3;
  for (graph::NodeId b = 20; fan.size() < 12; ++b)
    if (b != source && !fx.data.graph.has_edge(source, b))
      fan.push_back({source, b, 0});
  const auto want = predictor.predict_links(fx.data.graph, fan);

  serve::Server server(predictor, fx.data.graph, {});
  expect_predictions_bitwise_equal(server.score_batch(fan), want, "fan");
  const auto s = server.stats();
  // Within the group the source frontier is reused via the per-thread cache
  // and the overlapping hulls share node rows.
  EXPECT_GT(s.row_hits, 0);

  // A second batch fanning the SAME source against fresh destinations must
  // hit the cross-query endpoint cache (the source BFS is replayed from the
  // shared LRU instead of re-traversed).
  std::vector<seal::LinkExample> fan2;
  for (graph::NodeId b = 120; fan2.size() < 6; ++b)
    if (b != source && !fx.data.graph.has_edge(source, b))
      fan2.push_back({source, b, 0});
  expect_predictions_bitwise_equal(server.score_batch(fan2),
                                   predictor.predict_links(fx.data.graph, fan2),
                                   "fan2");
  EXPECT_GT(server.stats().endpoint_hits, s.endpoint_hits);
}

// ---- Server: cache coherence under mutations -------------------------------

TEST(ServerCache, MutationsNeverChangeBytes) {
  ServeFixture fx;
  auto g = fx.data.graph;  // mutable serving copy
  const auto predictor = fx.predictor();
  const auto cold = fx.predictor();
  serve::ServerOptions so;
  so.num_workers = 2;
  serve::Server server(predictor, g, so);

  util::Rng rng(77);
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  for (int step = 0; step < 60; ++step) {
    // Single-writer contract: mutate only between requests.
    const auto muts = rng.uniform_int(3);
    for (std::uint64_t k = 0; k < muts; ++k) {
      const auto a = static_cast<graph::NodeId>(rng.uniform_int(n));
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (a == b) continue;
      if (rng.uniform() < 0.5 && g.has_edge(a, b))
        g.delete_edge(a, b);
      else if (!g.has_edge(a, b))
        g.insert_edge(a, b,
                      static_cast<std::int32_t>(rng.uniform_int(
                          static_cast<std::uint64_t>(g.num_edge_types()))));
    }
    // Overlapping batches drive hits; mutations drive invalidations.
    const auto links =
        random_links(g, 6, fx.data.num_classes,
                     /*seed=*/500 + static_cast<std::uint64_t>(step) % 4);
    expect_predictions_bitwise_equal(server.score_batch(links),
                                     cold.predict_links(g, links),
                                     "step " + std::to_string(step));
  }
  const auto s = server.stats();
  EXPECT_GT(s.score_hits, 0);
  EXPECT_GT(s.score_invalidated + s.endpoint_invalidated, 0)
      << "interleaving never invalidated anything — property proved nothing";
}

// ---- Server: lifecycle -----------------------------------------------------

TEST(ServerLifecycle, ShutdownDrainsQueuedAndInFlightRequests) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  const auto links = random_links(fx.data.graph, 8, fx.data.num_classes, 41);
  const auto want = predictor.predict_links(fx.data.graph, links);

  serve::Server server(predictor, fx.data.graph, {});
  std::vector<std::future<core::LinkPredictions>> futures;
  for (int r = 0; r < 4; ++r)
    futures.push_back(server.submit(links));
  server.shutdown();  // must drain all four to their futures first
  EXPECT_TRUE(server.closed());
  for (auto& f : futures)
    expect_predictions_bitwise_equal(f.get(), want, "drained");
  server.shutdown();  // idempotent
}

TEST(ServerLifecycle, SubmitAfterShutdownThrowsServeError) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  serve::Server server(predictor, fx.data.graph, {});
  server.shutdown();
  EXPECT_THROW(
      server.submit(random_links(fx.data.graph, 2, fx.data.num_classes, 5)),
      serve::ServeError);
}

TEST(ServerLifecycle, InvalidOptionsAreRejected) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  serve::ServerOptions so;
  so.num_workers = 0;
  EXPECT_THROW(serve::Server(predictor, fx.data.graph, so),
               serve::ServeError);
  so.num_workers = 1;
  so.queue_capacity = 0;
  EXPECT_THROW(serve::Server(predictor, fx.data.graph, so),
               serve::ServeError);
}

TEST(ServerLifecycle, WorkerFailureSurfacesLowestInputIndexForAnyWorkerCount) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  auto links = random_links(fx.data.graph, 8, fx.data.num_classes, 51);
  const auto bad = static_cast<graph::NodeId>(fx.data.graph.num_nodes() + 7);
  links[2] = {bad, 0, 0};  // out-of-range endpoint -> worker throws
  links[5] = {0, bad, 0};

  for (const int workers : {1, 3}) {
    serve::ServerOptions so;
    so.num_workers = workers;
    serve::Server server(predictor, fx.data.graph, so);
    auto future = server.submit(links);
    try {
      future.get();
      FAIL() << "expected WorkerError (workers=" << workers << ")";
    } catch (const util::WorkerError& e) {
      EXPECT_EQ(e.item(), 2) << "workers=" << workers;
      EXPECT_NE(std::string(e.what()).find("serve::score_batch"),
                std::string::npos)
          << e.what();
    }
    // The server survives a failed request and keeps serving.
    const auto good = random_links(fx.data.graph, 4, fx.data.num_classes, 52);
    expect_predictions_bitwise_equal(
        server.score_batch(good),
        predictor.predict_links(fx.data.graph, good), "after failure");
  }
}

TEST(ServerBackpressure, BoundedQueueNeverDeadlocksAtCapacityOne) {
  ServeFixture fx;
  const auto predictor = fx.predictor();
  serve::ServerOptions so;
  so.queue_capacity = 1;  // every submit beyond the first in-flight blocks
  serve::Server server(predictor, fx.data.graph, so);
  const auto links = random_links(fx.data.graph, 6, fx.data.num_classes, 61);
  const auto want = predictor.predict_links(fx.data.graph, links);
  std::vector<std::future<core::LinkPredictions>> futures;
  for (int r = 0; r < 6; ++r)
    futures.push_back(server.submit(links));
  for (auto& f : futures)
    expect_predictions_bitwise_equal(f.get(), want, "backpressure");
}

// ---- LinkPredictor::stats() ------------------------------------------------

TEST(PredictorStats, ScoreAndFrontierCountersTrackTheCaches) {
  ServeFixture fx;
  core::LinkPredictor::Options po;
  po.dataset = fx.cfg.dataset;
  po.cache_scores = true;
  const core::LinkPredictor predictor(fx.clf->model(), po);

  graph::reset_frontier_cache_stats();
  const auto links = random_links(fx.data.graph, 6, fx.data.num_classes, 71);
  predictor.predict_links(fx.data.graph, links);
  const auto first = predictor.stats();
  EXPECT_EQ(first.score.hits, 0);
  EXPECT_EQ(first.score.misses, 6);
  EXPECT_GT(first.frontier_misses, 0);

  predictor.predict_links(fx.data.graph, links);
  const auto second = predictor.stats();
  EXPECT_EQ(second.score.hits, 6);
  EXPECT_EQ(second.score.misses, 6);
  EXPECT_EQ(second.score.evictions, 0);
  // Frontier counters are process-wide aggregates and only ever grow.
  EXPECT_GE(second.frontier_hits, first.frontier_hits);
  EXPECT_GE(second.frontier_misses, first.frontier_misses);
}

// ---- NodeRowCache ----------------------------------------------------------

TEST(NodeRowCache, CachedRowsReproduceBuildSampleExactly) {
  ServeFixture fx;
  const auto& g = fx.data.graph;
  auto extract = fx.cfg.dataset.extract;
  const auto& features = fx.cfg.dataset.features;
  const auto links = random_links(g, 10, fx.data.num_classes, 81);

  seal::NodeRowCache cache;
  for (const auto& link : links) {
    const auto sub = graph::extract_enclosing_subgraph(g, link.a, link.b,
                                                       extract);
    const auto plain = seal::build_sample(g, sub, link.label, features);
    const auto cached =
        seal::build_sample(g, sub, link.label, features, &cache);
    ASSERT_EQ(plain.num_nodes, cached.num_nodes);
    ASSERT_EQ(plain.src, cached.src);
    ASSERT_EQ(plain.dst, cached.dst);
    ASSERT_EQ(plain.node_feat.numel(), cached.node_feat.numel());
    ASSERT_EQ(plain.node_feat.to_vec64(), cached.node_feat.to_vec64());
  }
  EXPECT_GT(cache.stats().hits, 0);     // overlapping subgraphs shared rows
  EXPECT_GT(cache.stats().misses, 0);
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace amdgcnn
