// Shared test helpers: numerical gradient checking against the autograd
// tape, and small graph fixtures reused across suites.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "tensor/tensor.h"

namespace amdgcnn::testing {

/// Central-difference numerical gradient of `loss_fn` (a scalar function of
/// the data currently stored in `param`) compared against the analytic
/// gradient accumulated in param.grad() after loss_fn().backward().
///
/// loss_fn must rebuild the tape from scratch at every call (it reads
/// param.data() afresh).
inline void expect_gradient_matches(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn,
    double eps = 1e-5, double tol = 1e-6) {
  param.requires_grad(true);
  param.zero_grad();
  auto loss = loss_fn();
  loss.backward();
  const std::vector<double> analytic = param.grad();

  for (std::size_t i = 0; i < param.data().size(); ++i) {
    const double saved = param.data()[i];
    param.data()[i] = saved + eps;
    const double up = loss_fn().item();
    param.data()[i] = saved - eps;
    const double down = loss_fn().item();
    param.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol + 1e-4 * std::max(std::abs(analytic[i]), std::abs(numeric)))
        << "gradient mismatch at flat index " << i;
  }
}

/// A 5-node path graph 0-1-2-3-4 with one node type and one edge type.
inline graph::KnowledgeGraph path_graph(std::int64_t n = 5) {
  graph::KnowledgeGraph g(1, 1);
  for (std::int64_t i = 0; i < n; ++i) g.add_node(0);
  for (std::int64_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>(i + 1), 0);
  g.finalize();
  return g;
}

/// A triangle 0-1-2 plus a pendant node 3 attached to node 2.
inline graph::KnowledgeGraph triangle_with_tail() {
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(2, 3, 0);
  g.finalize();
  return g;
}

}  // namespace amdgcnn::testing
