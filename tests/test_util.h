// Shared test helpers: numerical gradient checking against the autograd
// tape, small graph fixtures, and the seeded random-input generators
// (random KGs, random link lists, random update sequences) that drive the
// property suites.  Every generator is a pure function of its seed, so a
// failing trial replays from the seed printed in the assertion message —
// shrink by hand-editing the seed/count, mapf-het style.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/kg_generator.h"
#include "graph/knowledge_graph.h"
#include "seal/feature_builder.h"
#include "seal/sampling.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace amdgcnn::testing {

/// Central-difference numerical gradient of `loss_fn` (a scalar function of
/// the data currently stored in `param`) compared against the analytic
/// gradient accumulated in the tensor's grad buffer after
/// loss_fn().backward().  Works for either storage dtype; `param` must store
/// scalar type T.
///
/// loss_fn must rebuild the tape from scratch at every call (it reads the
/// param data afresh).  The perturbed abscissae are re-read after rounding
/// to T so the divided difference uses the step that was actually applied.
template <typename T>
inline void expect_gradient_matches_t(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn, double eps,
    double tol, double rel) {
  param.requires_grad(true);
  param.zero_grad();
  auto loss = loss_fn();
  loss.backward();
  const auto& grad = param.grad_as<T>();
  const std::vector<double> analytic(grad.begin(), grad.end());

  auto& data = param.data_as<T>();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const T saved = data[i];
    data[i] = static_cast<T>(static_cast<double>(saved) + eps);
    const double x_up = static_cast<double>(data[i]);
    const double up = loss_fn().item();
    data[i] = static_cast<T>(static_cast<double>(saved) - eps);
    const double x_down = static_cast<double>(data[i]);
    const double down = loss_fn().item();
    data[i] = saved;
    const double numeric = (up - down) / (x_up - x_down);
    EXPECT_NEAR(analytic[i], numeric,
                tol + rel * std::max(std::abs(analytic[i]), std::abs(numeric)))
        << "gradient mismatch at flat index " << i;
  }
}

/// f64 gradcheck with the historical defaults: eps near the cube root of
/// f64 machine epsilon, tolerance just above central-difference truncation.
inline void expect_gradient_matches(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn,
    double eps = 1e-5, double tol = 1e-6) {
  expect_gradient_matches_t<double>(param, loss_fn, eps, tol, /*rel=*/1e-4);
}

/// f32 gradcheck.  Tolerances re-derived for single precision: with f32
/// machine epsilon ~1.2e-7, the divided difference's rounding error is
/// ~ulp(loss)/(2*eps) ≈ 1e-5 at eps = 5e-3 (truncation ~eps^2 ≈ 2.5e-5),
/// and the analytic gradient itself carries a few f32 ulps of rounding per
/// tape op.  tol = 2e-3 absolute with a 2e-2 relative term sits an order of
/// magnitude above that noise floor while still failing hard on any genuine
/// backward-pass bug (those are O(1) relative errors).
inline void expect_gradient_matches_f32(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn,
    double eps = 5e-3, double tol = 2e-3) {
  expect_gradient_matches_t<float>(param, loss_fn, eps, tol, /*rel=*/2e-2);
}

/// A 5-node path graph 0-1-2-3-4 with one node type and one edge type.
inline graph::KnowledgeGraph path_graph(std::int64_t n = 5) {
  graph::KnowledgeGraph g(1, 1);
  for (std::int64_t i = 0; i < n; ++i) g.add_node(0);
  for (std::int64_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>(i + 1), 0);
  g.finalize();
  return g;
}

/// A triangle 0-1-2 plus a pendant node 3 attached to node 2.
inline graph::KnowledgeGraph triangle_with_tail() {
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(2, 3, 0);
  g.finalize();
  return g;
}

// ---- Seeded random-input generators (property suites) ----------------------

/// RandomKGOptions pinned to one seed (the defaults elsewhere are the
/// property-suite workhorse shape: 60 nodes / 150 edges / 3+4 types).
inline datasets::RandomKGOptions random_kg_options(std::uint64_t seed) {
  datasets::RandomKGOptions o;
  o.seed = seed;
  return o;
}

/// Links over distinct node pairs of g, labels cycling over `num_classes`.
/// A mix of real edges and non-edges, so extraction exercises both the
/// masked-edge path and the plain path.
inline std::vector<seal::LinkExample> random_links(
    const graph::KnowledgeGraph& g, std::int64_t count,
    std::int64_t num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<seal::LinkExample> links;
  while (static_cast<std::int64_t>(links.size()) < count) {
    const auto a = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(g.num_nodes())));
    const auto b = static_cast<graph::NodeId>(
        rng.uniform_int(static_cast<std::uint64_t>(g.num_nodes())));
    if (a == b) continue;
    links.push_back({a, b,
                     static_cast<std::int32_t>(
                         links.size() % static_cast<std::size_t>(num_classes))});
  }
  return links;
}

/// One step of a dynamic-graph workload.
struct GraphUpdate {
  enum class Kind { kInsert, kRemove };
  Kind kind = Kind::kInsert;
  graph::NodeId u = -1;
  graph::NodeId v = -1;
  std::int32_t type = 0;  // relation type of an insert
};

struct UpdateSequenceOptions {
  std::int64_t count = 40;
  /// Probability of a removal at each step (when any edge is live).
  double remove_fraction = 0.4;
  std::uint64_t seed = 1;
};

/// A valid update sequence against the CURRENT live-edge set of `g`
/// (finalized, overlay allowed): every remove targets an edge that is live
/// at that point of the replay, every insert a pair that is not.  Pure in
/// (g, options) — replaying the same sequence against any copy of g is
/// deterministic, which is what lets the compaction-identity tests apply
/// one sequence to many copies compacted at different points.
inline std::vector<GraphUpdate> make_update_sequence(
    const graph::KnowledgeGraph& g, const UpdateSequenceOptions& options) {
  util::Rng rng(options.seed);
  auto key = [](graph::NodeId a, graph::NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
  };
  std::vector<std::pair<graph::NodeId, graph::NodeId>> live;
  std::unordered_set<std::uint64_t> live_set;
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges());
       ++e) {
    if (g.finalized() && g.edge_removed(e)) continue;
    const auto& rec = g.edge(e);
    live.emplace_back(rec.src, rec.dst);
    live_set.insert(key(rec.src, rec.dst));
  }
  std::vector<GraphUpdate> seq;
  seq.reserve(static_cast<std::size_t>(options.count));
  const auto n = static_cast<std::uint64_t>(g.num_nodes());
  while (static_cast<std::int64_t>(seq.size()) < options.count) {
    if (!live.empty() && rng.uniform() < options.remove_fraction) {
      const auto i = rng.uniform_int(static_cast<std::uint64_t>(live.size()));
      const auto [u, v] = live[i];
      live[i] = live.back();
      live.pop_back();
      live_set.erase(key(u, v));
      seq.push_back({GraphUpdate::Kind::kRemove, u, v, 0});
    } else {
      const auto u = static_cast<graph::NodeId>(rng.uniform_int(n));
      const auto v = static_cast<graph::NodeId>(rng.uniform_int(n));
      if (u == v || live_set.contains(key(u, v))) continue;
      const auto type =
          static_cast<std::int32_t>(rng.uniform_int(
              static_cast<std::uint64_t>(g.num_edge_types())));
      live.emplace_back(u, v);
      live_set.insert(key(u, v));
      seq.push_back({GraphUpdate::Kind::kInsert, u, v, type});
    }
  }
  return seq;
}

inline void apply_update(graph::KnowledgeGraph& g, const GraphUpdate& u) {
  if (u.kind == GraphUpdate::Kind::kInsert)
    g.insert_edge(u.u, u.v, u.type);
  else
    g.delete_edge(u.u, u.v);
}

inline void apply_updates(graph::KnowledgeGraph& g,
                          const std::vector<GraphUpdate>& seq) {
  for (const auto& u : seq) apply_update(g, u);
}

/// The logical graph of `g` (live edges, in the stable order compact()
/// produces) rebuilt through the pristine add_edge + finalize path — the
/// reference side of the static-vs-incremental equivalence property.
inline graph::KnowledgeGraph rebuild_via_finalize(
    const graph::KnowledgeGraph& g) {
  graph::KnowledgeGraph out(g.num_node_types(), g.num_edge_types(),
                            g.edge_attr_dim(), g.node_feat_dim());
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(g.num_nodes());
       ++v) {
    out.add_node(g.node_type(v));
    if (g.node_feat_dim() > 0) {
      const auto added = static_cast<graph::NodeId>(out.num_nodes() - 1);
      out.set_node_features(added, g.node_features(v));
    }
  }
  for (std::int32_t t = 0; t < g.num_edge_types(); ++t)
    if (g.edge_attr_dim() > 0) out.set_edge_type_attr(t, g.edge_type_attr(t));
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges());
       ++e) {
    if (g.edge_removed(e)) continue;
    const auto& rec = g.edge(e);
    out.add_edge(rec.src, rec.dst, rec.type);
  }
  out.finalize();
  return out;
}

/// Byte-level sample comparison shared by the parallel-build and
/// dynamic-graph determinism suites.
inline void expect_samples_identical(
    const std::vector<seal::SubgraphSample>& got,
    const std::vector<seal::SubgraphSample>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& a = got[i];
    const auto& b = want[i];
    EXPECT_EQ(a.num_nodes, b.num_nodes) << what << " sample " << i;
    EXPECT_EQ(a.label, b.label) << what << " sample " << i;
    EXPECT_EQ(a.src, b.src) << what << " sample " << i;
    EXPECT_EQ(a.dst, b.dst) << what << " sample " << i;
    ASSERT_EQ(a.node_feat.shape(), b.node_feat.shape())
        << what << " sample " << i;
    // Bit-exact, not approximate: the whole point of the contract.
    EXPECT_EQ(a.node_feat.data(), b.node_feat.data())
        << what << " sample " << i;
    ASSERT_EQ(a.edge_attr.defined(), b.edge_attr.defined())
        << what << " sample " << i;
    if (a.edge_attr.defined()) {
      ASSERT_EQ(a.edge_attr.shape(), b.edge_attr.shape())
          << what << " sample " << i;
      EXPECT_EQ(a.edge_attr.data(), b.edge_attr.data())
          << what << " sample " << i;
    }
  }
}

}  // namespace amdgcnn::testing
