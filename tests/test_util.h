// Shared test helpers: numerical gradient checking against the autograd
// tape, and small graph fixtures reused across suites.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/knowledge_graph.h"
#include "tensor/tensor.h"

namespace amdgcnn::testing {

/// Central-difference numerical gradient of `loss_fn` (a scalar function of
/// the data currently stored in `param`) compared against the analytic
/// gradient accumulated in the tensor's grad buffer after
/// loss_fn().backward().  Works for either storage dtype; `param` must store
/// scalar type T.
///
/// loss_fn must rebuild the tape from scratch at every call (it reads the
/// param data afresh).  The perturbed abscissae are re-read after rounding
/// to T so the divided difference uses the step that was actually applied.
template <typename T>
inline void expect_gradient_matches_t(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn, double eps,
    double tol, double rel) {
  param.requires_grad(true);
  param.zero_grad();
  auto loss = loss_fn();
  loss.backward();
  const auto& grad = param.grad_as<T>();
  const std::vector<double> analytic(grad.begin(), grad.end());

  auto& data = param.data_as<T>();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const T saved = data[i];
    data[i] = static_cast<T>(static_cast<double>(saved) + eps);
    const double x_up = static_cast<double>(data[i]);
    const double up = loss_fn().item();
    data[i] = static_cast<T>(static_cast<double>(saved) - eps);
    const double x_down = static_cast<double>(data[i]);
    const double down = loss_fn().item();
    data[i] = saved;
    const double numeric = (up - down) / (x_up - x_down);
    EXPECT_NEAR(analytic[i], numeric,
                tol + rel * std::max(std::abs(analytic[i]), std::abs(numeric)))
        << "gradient mismatch at flat index " << i;
  }
}

/// f64 gradcheck with the historical defaults: eps near the cube root of
/// f64 machine epsilon, tolerance just above central-difference truncation.
inline void expect_gradient_matches(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn,
    double eps = 1e-5, double tol = 1e-6) {
  expect_gradient_matches_t<double>(param, loss_fn, eps, tol, /*rel=*/1e-4);
}

/// f32 gradcheck.  Tolerances re-derived for single precision: with f32
/// machine epsilon ~1.2e-7, the divided difference's rounding error is
/// ~ulp(loss)/(2*eps) ≈ 1e-5 at eps = 5e-3 (truncation ~eps^2 ≈ 2.5e-5),
/// and the analytic gradient itself carries a few f32 ulps of rounding per
/// tape op.  tol = 2e-3 absolute with a 2e-2 relative term sits an order of
/// magnitude above that noise floor while still failing hard on any genuine
/// backward-pass bug (those are O(1) relative errors).
inline void expect_gradient_matches_f32(
    ag::Tensor& param, const std::function<ag::Tensor()>& loss_fn,
    double eps = 5e-3, double tol = 2e-3) {
  expect_gradient_matches_t<float>(param, loss_fn, eps, tol, /*rel=*/2e-2);
}

/// A 5-node path graph 0-1-2-3-4 with one node type and one edge type.
inline graph::KnowledgeGraph path_graph(std::int64_t n = 5) {
  graph::KnowledgeGraph g(1, 1);
  for (std::int64_t i = 0; i < n; ++i) g.add_node(0);
  for (std::int64_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>(i + 1), 0);
  g.finalize();
  return g;
}

/// A triangle 0-1-2 plus a pendant node 3 attached to node 2.
inline graph::KnowledgeGraph triangle_with_tail() {
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(2, 3, 0);
  g.finalize();
  return g;
}

}  // namespace amdgcnn::testing
