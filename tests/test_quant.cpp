// Quantized inference tier (DESIGN.md §2.7): the f16 storage codec
// (exhaustive 65536-pattern round-trip, table/bit-decode agreement,
// monotonicity, NaN/inf handling), the q8 block format (error bound,
// -128 never produced), the quantized frozen forward (closeness to the
// exact f32 path, worker-count determinism, arena warm-up coverage,
// resident-weight shrink) and the v3 checkpoint format (dequantized-value
// round-trip, the checked-in fixture, and the fail-closed negative paths).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/seal_link_classifier.h"
#include "datasets/wordnet_sim.h"
#include "infer/frozen_model.h"
#include "models/dgcnn.h"
#include "models/serialize.h"
#include "nn/mlp.h"
#include "tensor/half.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace amdgcnn {
namespace {

std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// ---- f16 codec --------------------------------------------------------------

TEST(F16Codec, TableAgreesWithBitDecodeForEveryPattern) {
  const float* table = ag::detail::f16_table();
  for (std::uint32_t i = 0; i < (1u << 16); ++i) {
    const float direct =
        ag::detail::f16_decode_bits(static_cast<std::uint16_t>(i));
    ASSERT_EQ(bits_of(table[i]), bits_of(direct)) << "pattern " << i;
  }
}

TEST(F16Codec, RoundTripReproducesAllBitPatternsExactly) {
  // decode -> encode must be the identity on ALL 65536 patterns, including
  // ±0, subnormals, ±inf and every NaN payload (quiet and signalling).
  int failures = 0;
  for (std::uint32_t i = 0; i < (1u << 16); ++i) {
    const ag::f16_t h{static_cast<std::uint16_t>(i)};
    const ag::f16_t back = ag::f32_to_f16(ag::f16_to_f32(h));
    if (back.bits != h.bits && ++failures <= 5)
      ADD_FAILURE() << "pattern 0x" << std::hex << i << " round-tripped to 0x"
                    << back.bits;
  }
  EXPECT_EQ(failures, 0);
}

TEST(F16Codec, EncodeIsMonotonicOverASweep) {
  // Monotone non-decreasing over the full normal range and the overflow
  // edge...
  float prev = -std::numeric_limits<float>::infinity();
  for (float x = -70000.0f; x <= 70000.0f; x += 0.37f) {
    const float rt = ag::f16_to_f32(ag::f32_to_f16(x));
    ASSERT_GE(rt, prev) << "x = " << x;
    prev = rt;
  }
  // ... and across the subnormal/normal boundary at fine grain.
  prev = -std::numeric_limits<float>::infinity();
  for (float x = -1e-3f; x <= 1e-3f; x += 1e-7f) {
    const float rt = ag::f16_to_f32(ag::f32_to_f16(x));
    ASSERT_GE(rt, prev) << "x = " << x;
    prev = rt;
  }
}

TEST(F16Codec, RoundToNearestEvenAtTies) {
  // f16 ulp at 1.0 is 2^-10; the tie 1 + 2^-11 rounds DOWN to the even
  // mantissa 0, while 1 + 3*2^-11 rounds UP to the even mantissa 2.
  const float ulp = 0.0009765625f;  // 2^-10
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(1.0f + ulp / 2)), 1.0f);
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(1.0f + 3 * ulp / 2)),
            1.0f + 2 * ulp);
}

TEST(F16Codec, SpecialValuesSurvive) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(inf)), inf);
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(-inf)), -inf);
  EXPECT_EQ(bits_of(ag::f16_to_f32(ag::f32_to_f16(0.0f))), bits_of(0.0f));
  EXPECT_EQ(bits_of(ag::f16_to_f32(ag::f32_to_f16(-0.0f))), bits_of(-0.0f));
  // Overflow saturates to inf, deep underflow to signed zero.
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(1e30f)), inf);
  EXPECT_EQ(ag::f16_to_f32(ag::f32_to_f16(-1e30f)), -inf);
  EXPECT_EQ(bits_of(ag::f16_to_f32(ag::f32_to_f16(-1e-30f))), bits_of(-0.0f));
  // NaN stays NaN...
  EXPECT_TRUE(std::isnan(
      ag::f16_to_f32(ag::f32_to_f16(std::numeric_limits<float>::quiet_NaN()))));
  // ... even when the payload lives entirely in the dropped low 13 bits,
  // which must not collapse the significand into the inf encoding.
  float low_payload_nan;
  const std::uint32_t u = 0x7F800001u;
  std::memcpy(&low_payload_nan, &u, sizeof(u));
  EXPECT_TRUE(std::isnan(ag::f16_to_f32(ag::f32_to_f16(low_payload_nan))));
}

TEST(F16Codec, SubnormalsRoundTripThroughEncode) {
  // The smallest f16 subnormal is 2^-24; check exact representatives and
  // the underflow tie at 2^-25 (rounds to even = 0).
  EXPECT_EQ(ag::f32_to_f16(5.9604644775390625e-8f).bits, 0x0001);   // 2^-24
  EXPECT_EQ(ag::f32_to_f16(2.9802322387695312e-8f).bits, 0x0000);   // 2^-25 tie
  EXPECT_EQ(ag::f32_to_f16(6.097555160522461e-5f).bits, 0x03FF);    // max subn
  EXPECT_EQ(ag::f32_to_f16(6.103515625e-5f).bits, 0x0400);          // min norm
}

// ---- q8 blocks --------------------------------------------------------------

std::vector<float> pseudo_random_values(std::int64_t n, float amplitude) {
  util::Rng rng(99);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x)
    v = amplitude * static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return x;
}

TEST(Q8Block, ErrorBoundedByHalfScalePerBlock) {
  // 100 is deliberately not a multiple of 32 so the tail block is covered.
  const std::int64_t n = 100;
  auto x = pseudo_random_values(n, 3.0f);
  x[0] = 3.0f;     // exact amax hits the clamp path
  x[50] = -2.5f;
  std::vector<std::int8_t> q(static_cast<std::size_t>(n));
  std::vector<float> scales(
      static_cast<std::size_t>(ag::quant::q8_num_blocks(n)));
  ag::quant::q8_quantize(x.data(), n, q.data(), scales.data());
  std::vector<float> dq(static_cast<std::size_t>(n));
  ag::quant::q8_dequantize(q.data(), scales.data(), dq.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float s = scales[static_cast<std::size_t>(i / ag::quant::kQ8Block)];
    EXPECT_LE(std::fabs(x[static_cast<std::size_t>(i)] -
                        dq[static_cast<std::size_t>(i)]),
              0.5f * s * 1.0001f + 1e-12f)
        << "element " << i;
  }
}

TEST(Q8Block, NeverProducesMinus128) {
  auto x = pseudo_random_values(256, 7.5f);
  x[0] = -7.5f;  // the most negative value maps to -127, never -128
  std::vector<std::int8_t> q(x.size());
  std::vector<float> scales(
      static_cast<std::size_t>(ag::quant::q8_num_blocks(256)));
  ag::quant::q8_quantize(x.data(), 256, q.data(), scales.data());
  for (const auto v : q) EXPECT_NE(v, std::int8_t{-128});
}

TEST(Q8Block, AllZeroBlockGetsZeroScaleAndDecodesToZeros) {
  std::vector<float> x(40, 0.0f);  // one full zero block + a zero tail
  std::vector<std::int8_t> q(x.size());
  std::vector<float> scales(2);
  ag::quant::q8_quantize(x.data(), 40, q.data(), scales.data());
  EXPECT_EQ(scales[0], 0.0f);
  EXPECT_EQ(scales[1], 0.0f);
  std::vector<float> dq(x.size(), 1.0f);
  ag::quant::q8_dequantize(q.data(), scales.data(), dq.data(), 40);
  for (const auto v : dq) EXPECT_EQ(v, 0.0f);
}

// ---- quantized frozen forward ----------------------------------------------

/// Star graph around node 0 with per-edge attributes (the test_infer toy).
seal::SubgraphSample star_sample(std::int64_t leaves, double attr_value,
                                 ag::Dtype dtype) {
  seal::SubgraphSample s;
  s.num_nodes = leaves + 1;
  s.label = 0;
  const std::int64_t f = 4;
  std::vector<double> feat(static_cast<std::size_t>(s.num_nodes * f), 0.0);
  for (std::int64_t i = 0; i < s.num_nodes; ++i)
    feat[i * f + (i == 0 ? 0 : 1)] = 1.0 + 0.01 * static_cast<double>(i);
  s.node_feat = ag::ops::cast(
      ag::Tensor::from_data({s.num_nodes, f}, std::move(feat)), dtype);
  std::vector<double> ea;
  for (std::int64_t l = 1; l <= leaves; ++l) {
    s.src.push_back(0);
    s.dst.push_back(l);
    s.src.push_back(l);
    s.dst.push_back(0);
    for (int rep = 0; rep < 2; ++rep) {
      ea.push_back(attr_value);
      ea.push_back(1.0 - attr_value);
    }
  }
  s.edge_attr = ag::ops::cast(
      ag::Tensor::from_data({static_cast<std::int64_t>(s.src.size()), 2},
                            std::move(ea)),
      dtype);
  return s;
}

models::ModelConfig small_config(models::GnnKind kind, ag::Dtype dtype) {
  models::ModelConfig mc;
  mc.kind = kind;
  mc.node_feature_dim = 4;
  mc.edge_attr_dim = 2;
  mc.num_classes = 2;
  mc.hidden_dim = 8;
  mc.heads = 2;
  mc.num_layers = 2;
  mc.sort_k = 10;
  mc.dense_dim = 16;
  mc.dtype = dtype;
  return mc;
}

TEST(QuantizedForward, ProbabilitiesStayCloseToExactF32) {
  for (auto kind :
       {models::GnnKind::kVanillaDGCNN, models::GnnKind::kAMDGCNN}) {
    util::Rng rng(21);
    auto model = models::make_link_gnn(small_config(kind, ag::Dtype::f32),
                                       rng);
    infer::FrozenModel exact(*model);
    infer::Arena arena;
    for (auto scheme : {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
      infer::FrozenModel quant(*model, scheme);
      EXPECT_EQ(quant.quant(), scheme);
      infer::Arena qarena;
      for (std::int64_t leaves : {2, 6, 14}) {
        const auto s = star_sample(leaves, 0.6, ag::Dtype::f32);
        double ref[2], mine[2];
        exact.predict_proba(s, arena, ref);
        quant.predict_proba(s, qarena, mine);
        for (int j = 0; j < 2; ++j)
          EXPECT_NEAR(ref[j], mine[j], 0.03)
              << models::gnn_kind_name(kind) << " "
              << ag::quant::scheme_name(scheme) << " leaves=" << leaves;
      }
    }
  }
}

TEST(QuantizedForward, SchemeKNoneIsTheExactCtor) {
  util::Rng rng(22);
  auto model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
  infer::FrozenModel exact(*model);
  infer::FrozenModel none(*model, ag::quant::Scheme::kNone);
  infer::Arena a1, a2;
  const auto s = star_sample(5, 0.4, ag::Dtype::f32);
  double ref[2], mine[2];
  exact.forward_logits(s, a1, ref);
  none.forward_logits(s, a2, mine);
  for (int j = 0; j < 2; ++j) EXPECT_EQ(ref[j], mine[j]);
  EXPECT_EQ(none.weight_bytes(), exact.weight_bytes());
}

TEST(QuantizedForward, ResidentWeightBytesShrink) {
  util::Rng rng(23);
  auto model = models::make_link_gnn(
      small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
  infer::FrozenModel exact(*model);
  infer::FrozenModel f16(*model, ag::quant::Scheme::kF16);
  infer::FrozenModel q8(*model, ag::quant::Scheme::kQ8);
  ASSERT_GT(exact.weight_bytes(), 0u);
  // f16 halves f32 storage exactly; q8 ~3.6x (1 byte + scale per 32).
  EXPECT_EQ(f16.weight_bytes() * 2, exact.weight_bytes());
  EXPECT_LT(static_cast<double>(q8.weight_bytes()),
            static_cast<double>(exact.weight_bytes()) / 3.0);
}

TEST(QuantizedForward, ArenaStopsGrowingAfterWarmUp) {
  // warm_up routes through the dispatching forward, so it must also cover
  // the per-stage decode scratch of the quantized path.
  for (auto scheme : {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
    util::Rng rng(24);
    auto model = models::make_link_gnn(
        small_config(models::GnnKind::kAMDGCNN, ag::Dtype::f32), rng);
    infer::FrozenModel frozen(*model, scheme);
    infer::Arena arena;
    frozen.warm_up(arena, /*max_nodes=*/16, /*max_edges=*/32);
    EXPECT_EQ(arena.block_count(), 1u);
    const std::size_t capacity = arena.capacity_bytes();
    ASSERT_GT(capacity, 0u);
    double sink[2];
    for (std::int64_t leaves : {1, 4, 8, 15}) {
      const auto s = star_sample(leaves, 0.5, ag::Dtype::f32);
      frozen.forward_logits(s, arena, sink);
      EXPECT_EQ(arena.capacity_bytes(), capacity)
          << ag::quant::scheme_name(scheme) << " leaves=" << leaves;
      EXPECT_EQ(arena.block_count(), 1u);
    }
  }
}

TEST(QuantizedForward, PredictLinksDeterministicAcrossWorkerCounts) {
  datasets::WordNetSimOptions o;
  o.num_nodes = 300;
  o.num_train = 80;
  o.num_test = 30;
  o.mean_degree = 5.0;
  const auto data = datasets::make_wordnet_sim(o);

  core::ClassifierConfig cfg;
  cfg.model.kind = models::GnnKind::kAMDGCNN;
  cfg.model.hidden_dim = 16;
  cfg.model.heads = 2;
  cfg.model.num_layers = 2;
  cfg.model.sort_k = 10;
  cfg.model.dtype = ag::Dtype::f32;
  cfg.training.epochs = 1;
  cfg.training.dtype = ag::Dtype::f32;
  cfg.dataset.extract.max_nodes = 32;
  cfg.dataset.features.dtype = ag::Dtype::f32;
  core::SealLinkClassifier clf(cfg);
  clf.fit(data.graph, data.train_links, data.num_classes);

  for (auto scheme : {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
    core::LinkPredictor::Options options;
    options.dataset = cfg.dataset;
    options.dataset.num_threads = 0;
    options.warm_nodes = 32;
    options.warm_edges = 64;
    options.quantize = scheme;
    core::LinkPredictor serial(clf.model(), options);
    const auto reference = serial.predict_links(data.graph, data.test_links);
    ASSERT_EQ(reference.labels.size(), data.test_links.size());

    for (std::int64_t threads : {1, 3}) {
      options.dataset.num_threads = threads;
      core::LinkPredictor parallel(clf.model(), options);
      const auto run = parallel.predict_links(data.graph, data.test_links);
      ASSERT_EQ(run.proba.size(), reference.proba.size());
      EXPECT_EQ(0, std::memcmp(run.proba.data(), reference.proba.data(),
                               reference.proba.size() * sizeof(double)))
          << ag::quant::scheme_name(scheme) << " num_threads=" << threads
          << " diverged from serial";
      EXPECT_EQ(run.labels, reference.labels);
    }

    // Quantized serving also shrinks the resident weights.
    options.dataset.num_threads = 0;
    options.quantize = ag::quant::Scheme::kNone;
    core::LinkPredictor exact(clf.model(), options);
    EXPECT_LT(serial.weight_bytes(), exact.weight_bytes());
  }
}

// ---- checkpoint format v3 ---------------------------------------------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string load_error(nn::Module& m, const std::string& path) {
  try {
    models::load_weights(m, path, "quant test");
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return std::string();
}

TEST(SerializeV3, RoundTripReproducesDequantizedValuesExactly) {
  for (auto scheme : {ag::quant::Scheme::kF16, ag::quant::Scheme::kQ8}) {
    const std::string path =
        temp_path(std::string("v3_roundtrip_") +
                  ag::quant::scheme_name(scheme) + ".bin");
    util::Rng rng(31);
    nn::MLP saved({6, 5, 3}, 0.0, rng, ag::Dtype::f32);  // 5 is off-block
    models::save_weights_quantized(saved, path, scheme);

    util::Rng other(77);
    nn::MLP loaded({6, 5, 3}, 0.0, other, ag::Dtype::f32);
    models::load_weights(loaded, path);

    const auto sp = saved.parameters();
    const auto lp = loaded.parameters();
    ASSERT_EQ(sp.size(), lp.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
      // The contract: loading reproduces quantize->dequantize of the saved
      // weights EXACTLY (not the original weights, which are lossy-encoded).
      const auto qt = ag::quant::quantize_tensor(sp[i], scheme);
      std::vector<float> expected(static_cast<std::size_t>(qt.n));
      qt.decode(expected.data());
      const auto& got = lp[i].data_as<float>();
      ASSERT_EQ(got.size(), expected.size()) << "parameter " << i;
      for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], expected[j]) << "parameter " << i << "[" << j << "]";
    }
  }
}

TEST(SerializeV3, SaveRejectsSchemeNone) {
  util::Rng rng(32);
  nn::MLP mlp({4, 4, 2}, 0.0, rng, ag::Dtype::f32);
  EXPECT_THROW(
      models::save_weights_quantized(mlp, temp_path("none.bin"),
                                     ag::quant::Scheme::kNone),
      std::runtime_error);
}

TEST(SerializeV3, QuantizedCheckpointRejectsF64Model) {
  const std::string path = temp_path("v3_into_f64.bin");
  util::Rng rng(33);
  nn::MLP saved({4, 4, 2}, 0.0, rng, ag::Dtype::f32);
  models::save_weights_quantized(saved, path, ag::quant::Scheme::kQ8);
  util::Rng other(34);
  nn::MLP f64_model({4, 4, 2}, 0.0, other);  // default f64
  const auto msg = load_error(f64_model, path);
  EXPECT_NE(msg.find("f32 model parameters"), std::string::npos) << msg;
  EXPECT_NE(msg.find("load_weights[quant test]"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(SerializeV3, FailClosedOnEveryCorruption) {
  const std::string good_path = temp_path("v3_good.bin");
  util::Rng rng(35);
  nn::MLP saved({4, 4, 2}, 0.0, rng, ag::Dtype::f32);
  models::save_weights_quantized(saved, good_path, ag::quant::Scheme::kQ8);
  const auto good = slurp(good_path);
  // Layout: magic(4) version(4) count(8) | code(1) rank(4) dims(2*8=16) |
  // block-size(4) block-count(8) scales(4*nblocks) values(numel).
  // First parameter of MLP({4,4,2}) is the [4,4] weight: rank 2, 16 values,
  // one block.
  const std::size_t kCode0 = 16, kBlock0 = 37, kScale0 = 49, kQ0 = 53;
  std::uint32_t block0;
  std::memcpy(&block0, good.data() + kBlock0, 4);
  ASSERT_EQ(block0, 32u);  // guards the hand-computed offsets above

  util::Rng other(36);
  nn::MLP target({4, 4, 2}, 0.0, other, ag::Dtype::f32);
  const std::string path = temp_path("v3_corrupt.bin");
  auto expect_load_error = [&](const std::vector<char>& bytes,
                               const std::string& needle) {
    spit(path, bytes);
    const auto msg = load_error(target, path);
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "wanted '" << needle << "' in: " << msg;
  };

  {  // corrupt magic
    auto bad = good;
    bad[0] = 'X';
    expect_load_error(bad, "bad magic");
  }
  {  // unknown version
    auto bad = good;
    const std::uint32_t v = 99;
    std::memcpy(bad.data() + 4, &v, 4);
    expect_load_error(bad, "unsupported version");
  }
  {  // unknown storage code
    auto bad = good;
    bad[kCode0] = 9;
    expect_load_error(bad, "unknown dtype code 9");
  }
  {  // quantized code smuggled into a v2 file
    const std::string v2_path = temp_path("v2_smuggle.bin");
    models::save_weights(saved, v2_path);
    auto bad = slurp(v2_path);
    bad[kCode0] = 3;
    expect_load_error(bad, "requires a v3 checkpoint");
    std::remove(v2_path.c_str());
  }
  {  // unsupported block size
    auto bad = good;
    const std::uint32_t b = 64;
    std::memcpy(bad.data() + kBlock0, &b, 4);
    expect_load_error(bad, "unsupported q8 block size 64");
  }
  {  // block count that cannot cover the tensor
    auto bad = good;
    const std::uint64_t nb = 7;
    std::memcpy(bad.data() + kBlock0 + 4, &nb, 8);
    expect_load_error(bad, "q8 block count 7");
  }
  {  // non-finite scale
    auto bad = good;
    const float s = std::numeric_limits<float>::quiet_NaN();
    std::memcpy(bad.data() + kScale0, &s, 4);
    expect_load_error(bad, "corrupt q8 scale");
  }
  {  // negative scale
    auto bad = good;
    const float s = -1.0f;
    std::memcpy(bad.data() + kScale0, &s, 4);
    expect_load_error(bad, "corrupt q8 scale");
  }
  {  // -128: a value the encoder never writes
    auto bad = good;
    bad[kQ0] = static_cast<char>(0x80);
    expect_load_error(bad, "corrupt q8 value -128");
  }
  {  // truncation mid-payload
    auto bad = good;
    bad.resize(bad.size() - 5);
    expect_load_error(bad, "truncated");
  }
  {  // truncation inside the header
    auto bad = good;
    bad.resize(10);
    expect_load_error(bad, "truncated");
  }
  {  // trailing garbage
    auto bad = good;
    bad.push_back('\0');
    expect_load_error(bad, "trailing garbage");
  }
  std::remove(path.c_str());
  std::remove(good_path.c_str());
}

TEST(SerializeV3, CheckedInFixtureStillLoads) {
  // Fixture written by save_weights_quantized(…, kQ8) from
  // nn::MLP({4, 4, 2}, 0.0, util::Rng(6), f32) — pins the v3 byte format.
  const std::string path =
      std::string(AMDGCNN_TEST_DATA_DIR) + "/v3_mlp_seed6_q8.bin";
  util::Rng fixture_rng(6);
  nn::MLP expected({4, 4, 2}, 0.0, fixture_rng, ag::Dtype::f32);

  util::Rng other_rng(15);
  nn::MLP loaded({4, 4, 2}, 0.0, other_rng, ag::Dtype::f32);
  models::load_weights(loaded, path);
  const auto ep = expected.parameters();
  const auto lp = loaded.parameters();
  ASSERT_EQ(ep.size(), lp.size());
  // The loaded side carries the q8 error of the generating machine's init
  // (bounded by scale/2 per block) on top of cross-flag init jitter, so the
  // tolerance is loose — the format pin is the point, not the values.
  for (std::size_t i = 0; i < ep.size(); ++i) {
    const auto& e = ep[i].data_as<float>();
    const auto& l = lp[i].data_as<float>();
    ASSERT_EQ(e.size(), l.size()) << "parameter " << i;
    for (std::size_t j = 0; j < e.size(); ++j)
      EXPECT_NEAR(e[j], l[j], 0.02) << "parameter " << i << "[" << j << "]";
  }
}

}  // namespace
}  // namespace amdgcnn
