// Forward-value tests for the dense ops (hand-computed expectations).
#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace amdgcnn::ag {
namespace {

using ops::add;
using ops::add_rowvec;
using ops::add_scalar;
using ops::concat_cols;
using ops::concat_rows;
using ops::cross_entropy;
using ops::gather_rows;
using ops::leaky_relu;
using ops::log_softmax_rows;
using ops::matmul;
using ops::mean;
using ops::mul;
using ops::mul_scalar;
using ops::nll_loss;
using ops::relu;
using ops::reshape;
using ops::scale_rows;
using ops::sigmoid;
using ops::slice_rows;
using ops::softmax_rows;
using ops::sub;
using ops::sum;
using ops::tanh_act;
using ops::transpose;

TEST(DenseOps, AddSubMul) {
  auto a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  auto b = Tensor::from_data({2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(add(a, b).data(), (std::vector<double>{11, 22, 33, 44}));
  EXPECT_EQ(sub(b, a).data(), (std::vector<double>{9, 18, 27, 36}));
  EXPECT_EQ(mul(a, b).data(), (std::vector<double>{10, 40, 90, 160}));
  auto c = Tensor::zeros({3});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(DenseOps, ScalarOps) {
  auto a = Tensor::from_data({3}, {1, -2, 3});
  EXPECT_EQ(add_scalar(a, 1.5).data(), (std::vector<double>{2.5, -0.5, 4.5}));
  EXPECT_EQ(mul_scalar(a, -2).data(), (std::vector<double>{-2, 4, -6}));
}

TEST(DenseOps, AddRowvecBroadcasts) {
  auto a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  auto b = Tensor::from_data({3}, {10, 20, 30});
  EXPECT_EQ(add_rowvec(a, b).data(),
            (std::vector<double>{11, 22, 33, 14, 25, 36}));
  EXPECT_THROW(add_rowvec(a, Tensor::zeros({2})), std::invalid_argument);
}

TEST(DenseOps, MatmulKnownResult) {
  auto a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  auto b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data(), (std::vector<double>{58, 64, 139, 154}));
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(DenseOps, MatmulIdentity) {
  auto a = Tensor::from_data({2, 2}, {3, 1, 4, 1});
  auto id = Tensor::from_data({2, 2}, {1, 0, 0, 1});
  EXPECT_EQ(matmul(a, id).data(), a.data());
  EXPECT_EQ(matmul(id, a).data(), a.data());
}

TEST(DenseOps, TransposeRoundTrip) {
  auto a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  auto t = transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.data(), (std::vector<double>{1, 4, 2, 5, 3, 6}));
  EXPECT_EQ(transpose(t).data(), a.data());
}

TEST(DenseOps, ReshapePreservesDataOrder) {
  auto a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  auto r = reshape(a, {3, 2});
  EXPECT_EQ(r.data(), a.data());
  EXPECT_THROW(reshape(a, {4, 2}), std::invalid_argument);
}

TEST(DenseOps, ConcatColsAndRows) {
  auto a = Tensor::from_data({2, 1}, {1, 2});
  auto b = Tensor::from_data({2, 2}, {3, 4, 5, 6});
  auto cc = concat_cols({a, b});
  EXPECT_EQ(cc.shape(), (Shape{2, 3}));
  EXPECT_EQ(cc.data(), (std::vector<double>{1, 3, 4, 2, 5, 6}));
  auto c = Tensor::from_data({1, 2}, {7, 8});
  auto cr = concat_rows({b, c});
  EXPECT_EQ(cr.shape(), (Shape{3, 2}));
  EXPECT_EQ(cr.data(), (std::vector<double>{3, 4, 5, 6, 7, 8}));
  EXPECT_THROW(concat_cols({a, c}), std::invalid_argument);
  EXPECT_THROW(concat_cols({}), std::invalid_argument);
}

TEST(DenseOps, SliceAndGatherRows) {
  auto a = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6});
  auto s = slice_rows(a, 1, 2);
  EXPECT_EQ(s.data(), (std::vector<double>{3, 4, 5, 6}));
  auto g = gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_EQ(g.data(), (std::vector<double>{5, 6, 1, 2, 5, 6}));
  EXPECT_THROW(slice_rows(a, 2, 2), std::invalid_argument);
  EXPECT_THROW(gather_rows(a, {3}), std::invalid_argument);
}

TEST(DenseOps, ScaleRows) {
  auto a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  auto s = scale_rows(a, {2.0, -1.0});
  EXPECT_EQ(s.data(), (std::vector<double>{2, 4, -3, -4}));
  EXPECT_THROW(scale_rows(a, {1.0}), std::invalid_argument);
}

TEST(DenseOps, Activations) {
  auto a = Tensor::from_data({4}, {-2, -0.5, 0, 3});
  EXPECT_EQ(relu(a).data(), (std::vector<double>{0, 0, 0, 3}));
  auto lr = leaky_relu(a, 0.1);
  EXPECT_DOUBLE_EQ(lr.data()[0], -0.2);
  EXPECT_DOUBLE_EQ(lr.data()[3], 3.0);
  auto th = tanh_act(a);
  EXPECT_NEAR(th.data()[3], std::tanh(3.0), 1e-12);
  auto sg = sigmoid(a);
  EXPECT_NEAR(sg.data()[2], 0.5, 1e-12);
  EXPECT_NEAR(sg.data()[0], 1.0 / (1.0 + std::exp(2.0)), 1e-12);
}

TEST(DenseOps, SumAndMean) {
  auto a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(sum(a).item(), 10.0);
  EXPECT_DOUBLE_EQ(mean(a).item(), 2.5);
}

TEST(DenseOps, SoftmaxRowsSumToOne) {
  auto a = Tensor::from_data({2, 3}, {1, 2, 3, -1, 0, 1});
  auto s = softmax_rows(a);
  for (int r = 0; r < 2; ++r) {
    double row = 0.0;
    for (int c = 0; c < 3; ++c) row += s.at(r, c);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
  // Monotone in the logits.
  EXPECT_GT(s.at(0, 2), s.at(0, 1));
  EXPECT_GT(s.at(0, 1), s.at(0, 0));
}

TEST(DenseOps, SoftmaxIsShiftInvariantAndStable) {
  auto a = Tensor::from_data({1, 3}, {1000, 1001, 1002});
  auto s = softmax_rows(a);
  auto b = Tensor::from_data({1, 3}, {0, 1, 2});
  auto sb = softmax_rows(b);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(s.at(0, c), sb.at(0, c), 1e-12);
}

TEST(DenseOps, LogSoftmaxMatchesLogOfSoftmax) {
  auto a = Tensor::from_data({2, 3}, {0.3, -1.2, 2.0, 4.0, 4.0, 4.0});
  auto ls = log_softmax_rows(a);
  auto s = softmax_rows(a);
  for (int i = 0; i < 6; ++i)
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-12);
}

TEST(DenseOps, NllAndCrossEntropy) {
  auto logits = Tensor::from_data({2, 2}, {0.0, 0.0, 10.0, -10.0});
  // Row 0: uniform -> loss log 2; row 1: confident class 0 -> ~0 for y=0.
  auto ce = cross_entropy(logits, {0, 0});
  EXPECT_NEAR(ce.item(), 0.5 * std::log(2.0), 1e-6);
  auto bad = cross_entropy(logits, {0, 1});
  EXPECT_GT(bad.item(), 5.0);
  EXPECT_THROW(cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {0, 2}), std::invalid_argument);
}

TEST(DenseOps, DropoutEvalIsIdentityAndTrainScales) {
  util::Rng rng(9);
  auto a = Tensor::ones({1000});
  auto eval = ops::dropout(a, 0.4, /*training=*/false, rng);
  EXPECT_EQ(eval.data(), a.data());
  auto train = ops::dropout(a, 0.4, /*training=*/true, rng);
  double mean_val = 0.0;
  std::int64_t zeros = 0;
  for (double v : train.data()) {
    mean_val += v;
    if (v == 0.0) ++zeros;
    else EXPECT_NEAR(v, 1.0 / 0.6, 1e-12);
  }
  mean_val /= 1000.0;
  EXPECT_NEAR(mean_val, 1.0, 0.1);          // inverted dropout is unbiased
  EXPECT_NEAR(static_cast<double>(zeros), 400.0, 60.0);
  EXPECT_THROW(ops::dropout(a, 1.0, true, rng), std::invalid_argument);
}

TEST(DenseOps, HeadsDotMatchesManualComputation) {
  // E=2, H=2, F=2.
  auto x = Tensor::from_data({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  auto a = Tensor::from_data({1, 4}, {1, 0, 0.5, 0.5});
  auto out = ops::heads_dot(x, a, 2);
  EXPECT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 1.0);       // 1*1 + 2*0
  EXPECT_DOUBLE_EQ(out.at(0, 1), 3.5);       // 3*0.5 + 4*0.5
  EXPECT_DOUBLE_EQ(out.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 7.5);
  EXPECT_THROW(ops::heads_dot(x, a, 3), std::invalid_argument);
}

TEST(DenseOps, HeadsScaleMatchesManualComputation) {
  auto x = Tensor::from_data({1, 4}, {1, 2, 3, 4});
  auto alpha = Tensor::from_data({1, 2}, {2.0, -1.0});
  auto out = ops::heads_scale(x, alpha, 2);
  EXPECT_EQ(out.data(), (std::vector<double>{2, 4, -3, -4}));
  EXPECT_THROW(ops::heads_scale(x, Tensor::zeros({1, 3}), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn::ag
