// Scale-tier suite (DESIGN.md §2.6): the binary CSR snapshot format, the
// epoch-based extraction kernel, and the 32-bit id-capacity guards.
//
// Layers:
//   * SnapshotRoundTrip — a graph loaded from a snapshot (both kMap and
//     kCopy) is indistinguishable from the built graph at every level we
//     serve from: adjacency queries, SEAL datasets (byte-exact tensors) and
//     predict_links probability rows; including after overlay mutations on
//     the mapped graph and after compact() detaches the mapping.
//   * SnapshotErrors — the format is fail-closed: unfinalized/pending
//     overlay saves, bad magic, truncation and missing files all raise
//     typed errors instead of serving garbage views.
//   * EpochExtraction — the per-thread visited-epoch kernel (and the
//     frontier cache on top of it) is bit-identical to the legacy
//     clear-per-link kernel on randomized graphs, static and mutated.
//   * IdCapacity — the 32-bit index-overflow guards, shrunk to a testable
//     capacity via KnowledgeGraph::set_id_capacity_for_testing.
//   * ScaleGenerator — make_scale_kg / sample_scale_links are pure
//     functions of their seed and produce well-formed output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/link_predictor.h"
#include "core/seal_link_classifier.h"
#include "datasets/kg_generator.h"
#include "graph/graph_types.h"
#include "graph/knowledge_graph.h"
#include "graph/snapshot.h"
#include "graph/subgraph.h"
#include "seal/dataset.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

using graph::GraphUpdateError;
using graph::KnowledgeGraph;
using graph::SnapshotLoadMode;
using testing::apply_updates;
using testing::expect_samples_identical;
using testing::make_update_sequence;
using testing::random_kg_options;
using testing::random_links;
using testing::UpdateSequenceOptions;

// Each test writes its own uniquely named snapshot in the working directory
// (ctest may run cases in parallel) and removes it on scope exit.
struct TempSnapshot {
  explicit TempSnapshot(const char* tag)
      : path(std::string("test_scale_") + tag + ".snap") {}
  ~TempSnapshot() { std::remove(path.c_str()); }
  std::string path;
};

seal::SealDatasetOptions small_options() {
  seal::SealDatasetOptions o;
  o.extract.num_hops = 2;
  o.extract.max_nodes = 24;
  o.features.max_drnl_label = 16;
  return o;
}

// Adjacency-level equality: every neighbor span, edge record and attribute
// table matches.  This is the raw layer; the SEAL/serving layers below
// depend on it byte-for-byte.
void expect_graphs_equal(const KnowledgeGraph& got, const KnowledgeGraph& want,
                         const char* what) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes()) << what;
  ASSERT_EQ(got.num_edges(), want.num_edges()) << what;
  ASSERT_EQ(got.num_live_edges(), want.num_live_edges()) << what;
  ASSERT_EQ(got.num_node_types(), want.num_node_types()) << what;
  ASSERT_EQ(got.num_edge_types(), want.num_edge_types()) << what;
  ASSERT_EQ(got.edge_attr_dim(), want.edge_attr_dim()) << what;
  for (graph::NodeId v = 0; v < static_cast<graph::NodeId>(want.num_nodes());
       ++v) {
    EXPECT_EQ(got.node_type(v), want.node_type(v)) << what << " node " << v;
    const auto ga = got.neighbors(v);
    const auto wa = want.neighbors(v);
    ASSERT_EQ(ga.size(), wa.size()) << what << " node " << v;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(ga[i].node, wa[i].node) << what << " node " << v;
      EXPECT_EQ(ga[i].edge, wa[i].edge) << what << " node " << v;
    }
  }
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(want.num_edges());
       ++e) {
    ASSERT_EQ(got.edge_removed(e), want.edge_removed(e)) << what;
    if (want.edge_removed(e)) continue;
    const auto& gr = got.edge(e);
    const auto& wr = want.edge(e);
    EXPECT_EQ(gr.src, wr.src) << what << " edge " << e;
    EXPECT_EQ(gr.dst, wr.dst) << what << " edge " << e;
    EXPECT_EQ(gr.type, wr.type) << what << " edge " << e;
  }
  for (std::int32_t t = 0; t < want.num_edge_types(); ++t) {
    const auto ga = got.edge_type_attr(t);
    const auto wa = want.edge_type_attr(t);
    ASSERT_EQ(ga.size(), wa.size()) << what;
    for (std::size_t i = 0; i < wa.size(); ++i)
      EXPECT_EQ(ga[i], wa[i]) << what << " attr type " << t;
  }
}

// ---- SnapshotRoundTrip ------------------------------------------------------

TEST(SnapshotRoundTrip, MappedAndCopiedLoadsMatchBuiltGraphExactly) {
  TempSnapshot tmp("roundtrip");
  const auto g = datasets::make_random_kg(random_kg_options(21));
  g.save_snapshot(tmp.path);

  const auto mapped = KnowledgeGraph::load_snapshot(tmp.path,
                                                    SnapshotLoadMode::kMap);
  const auto copied = KnowledgeGraph::load_snapshot(tmp.path,
                                                    SnapshotLoadMode::kCopy);
  EXPECT_TRUE(mapped.snapshot_backed());
  EXPECT_FALSE(copied.snapshot_backed());
  expect_graphs_equal(mapped, g, "kMap");
  expect_graphs_equal(copied, g, "kCopy");

  // The serving-critical layer: SEAL datasets built from the loaded graphs
  // are byte-exact copies of the built graph's, kernel-independent.
  const auto links = random_links(g, 30, /*num_classes=*/3, /*seed=*/5);
  const auto opts = small_options();
  const auto want = seal::build_samples(g, links, opts);
  expect_samples_identical(seal::build_samples(mapped, links, opts), want,
                           "kMap samples");
  expect_samples_identical(seal::build_samples(copied, links, opts), want,
                           "kCopy samples");
}

TEST(SnapshotRoundTrip, OverlayMutationsAndCompactOnMappedGraph) {
  TempSnapshot tmp("overlay");
  auto g = datasets::make_random_kg(random_kg_options(33));
  g.save_snapshot(tmp.path);
  auto mapped = KnowledgeGraph::load_snapshot(tmp.path,
                                              SnapshotLoadMode::kMap);

  // Replay one update sequence against both copies: patched adjacency must
  // shadow the mapped base arrays exactly as it shadows owned ones.
  UpdateSequenceOptions uo;
  uo.count = 50;
  uo.seed = 9;
  const auto seq = make_update_sequence(g, uo);
  apply_updates(g, seq);
  apply_updates(mapped, seq);
  ASSERT_GT(mapped.overlay_depth(), 0);
  EXPECT_TRUE(mapped.snapshot_backed());
  expect_graphs_equal(mapped, g, "overlay-on-mapping");

  const auto links = random_links(g, 20, /*num_classes=*/3, /*seed=*/7);
  const auto opts = small_options();
  expect_samples_identical(seal::build_samples(mapped, links, opts),
                           seal::build_samples(g, links, opts),
                           "overlay samples");

  // compact() detaches the mapping (copies the base arrays into owned
  // storage) and folds the overlay in; the logical graph is unchanged.
  mapped.compact();
  g.compact();
  EXPECT_FALSE(mapped.snapshot_backed());
  EXPECT_EQ(mapped.overlay_depth(), 0);
  expect_graphs_equal(mapped, g, "post-compact");

  // A compacted ex-mapped graph is a first-class citizen: it can be
  // snapshotted again and the round trip still holds.
  TempSnapshot tmp2("overlay2");
  mapped.save_snapshot(tmp2.path);
  expect_graphs_equal(
      KnowledgeGraph::load_snapshot(tmp2.path, SnapshotLoadMode::kMap), g,
      "resnapshot");
}

TEST(SnapshotRoundTrip, ResaveOfMappedGraphIsByteIdentical) {
  TempSnapshot tmp1("resave1");
  TempSnapshot tmp2("resave2");
  const auto g = datasets::make_random_kg(random_kg_options(44));
  g.save_snapshot(tmp1.path);
  // A freshly mapped graph has no overlay, so it can be re-saved directly;
  // the bytes must survive the trip unchanged.
  KnowledgeGraph::load_snapshot(tmp1.path, SnapshotLoadMode::kMap)
      .save_snapshot(tmp2.path);

  auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  const auto b1 = read_all(tmp1.path);
  const auto b2 = read_all(tmp2.path);
  ASSERT_FALSE(b1.empty());
  ASSERT_EQ(b1.size(), b2.size());
  EXPECT_EQ(0, std::memcmp(b1.data(), b2.data(), b1.size()));
}

TEST(SnapshotRoundTrip, ServingScoresFromMappedGraphAreBitIdentical) {
  TempSnapshot tmp("serving");
  // Train a tiny classifier on the built graph, then serve the same batch
  // from the built, mapped and copied graphs: probability rows must be
  // bitwise equal (the inference path reads only through the view API).
  const auto g = datasets::make_random_kg(random_kg_options(55));
  const auto train = random_links(g, 30, /*num_classes=*/3, /*seed=*/3);

  core::ClassifierConfig cfg;
  cfg.model.kind = models::GnnKind::kAMDGCNN;
  cfg.model.hidden_dim = 8;
  cfg.model.heads = 2;
  cfg.model.num_layers = 2;
  cfg.model.sort_k = 10;
  cfg.training.epochs = 1;
  cfg.dataset = small_options();
  core::SealLinkClassifier clf(cfg);
  clf.fit(g, train, /*num_classes=*/3);

  core::LinkPredictor::Options po;
  po.dataset = cfg.dataset;
  const core::LinkPredictor predictor(clf.model(), po);

  g.save_snapshot(tmp.path);
  const auto mapped = KnowledgeGraph::load_snapshot(tmp.path,
                                                    SnapshotLoadMode::kMap);
  const auto copied = KnowledgeGraph::load_snapshot(tmp.path,
                                                    SnapshotLoadMode::kCopy);

  const auto links = random_links(g, 12, /*num_classes=*/3, /*seed=*/19);
  const auto want = predictor.predict_links(g, links);
  for (const auto* other : {&mapped, &copied}) {
    const auto got = predictor.predict_links(*other, links);
    ASSERT_EQ(got.proba.size(), want.proba.size());
    EXPECT_EQ(0, std::memcmp(got.proba.data(), want.proba.data(),
                             want.proba.size() * sizeof(double)));
    EXPECT_EQ(got.labels, want.labels);
  }
}

// ---- SnapshotErrors ---------------------------------------------------------

TEST(SnapshotErrors, SaveRequiresFinalizedGraphWithEmptyOverlay) {
  TempSnapshot tmp("errors_save");
  KnowledgeGraph unfinalized(1, 1);
  unfinalized.add_node(0);
  unfinalized.add_node(0);
  unfinalized.add_edge(0, 1, 0);
  EXPECT_THROW(unfinalized.save_snapshot(tmp.path), std::logic_error);

  auto g = datasets::make_random_kg(random_kg_options(66));
  const auto n = static_cast<graph::NodeId>(g.num_nodes());
  graph::NodeId u = 0, v = 1;
  while (g.find_edge(u, v) >= 0) v = static_cast<graph::NodeId>((v + 1) % n);
  g.insert_edge(u, v, 0);
  ASSERT_GT(g.overlay_depth(), 0);
  EXPECT_THROW(g.save_snapshot(tmp.path), std::logic_error);
  g.compact();
  g.save_snapshot(tmp.path);  // after compaction the same graph saves fine
}

TEST(SnapshotErrors, LoadRejectsCorruptAndMissingFiles) {
  TempSnapshot tmp("errors_load");
  const auto g = datasets::make_random_kg(random_kg_options(77));
  g.save_snapshot(tmp.path);

  EXPECT_THROW(KnowledgeGraph::load_snapshot("no_such_file.snap"),
               std::runtime_error);

  // Corrupt the magic in place.
  {
    std::fstream f(tmp.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_THROW(KnowledgeGraph::load_snapshot(tmp.path), std::runtime_error);
  EXPECT_THROW(
      KnowledgeGraph::load_snapshot(tmp.path, SnapshotLoadMode::kCopy),
      std::runtime_error);

  // Re-save, then truncate: the header's file_size check must fire.
  g.save_snapshot(tmp.path);
  {
    std::ifstream in(tmp.path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 8);
    std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(KnowledgeGraph::load_snapshot(tmp.path), std::runtime_error);
}

// ---- EpochExtraction --------------------------------------------------------

void expect_subgraphs_equal(const graph::EnclosingSubgraph& got,
                            const graph::EnclosingSubgraph& want,
                            const std::string& what) {
  ASSERT_EQ(got.nodes, want.nodes) << what;
  ASSERT_EQ(got.dist_a, want.dist_a) << what;
  ASSERT_EQ(got.dist_b, want.dist_b) << what;
  ASSERT_EQ(got.edges.size(), want.edges.size()) << what;
  for (std::size_t i = 0; i < want.edges.size(); ++i) {
    EXPECT_EQ(got.edges[i].src, want.edges[i].src) << what;
    EXPECT_EQ(got.edges[i].dst, want.edges[i].dst) << what;
    EXPECT_EQ(got.edges[i].orig, want.edges[i].orig) << what;
  }
  ASSERT_EQ(got.hull, want.hull) << what;
}

// The epoch kernel (with and without the frontier cache) must reproduce the
// legacy clear-per-link kernel bit for bit — same nodes in the same order,
// same distances, same induced edges — across modes, hop counts, caps and
// overlay mutations.  Determinism is the contract everything else (parallel
// build, score cache, checkpoint reproducibility) stands on.
TEST(EpochExtraction, MatchesLegacyKernelOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto g = datasets::make_random_kg(random_kg_options(seed));
    for (const bool mutate : {false, true}) {
      if (mutate) {
        UpdateSequenceOptions uo;
        uo.count = 30;
        uo.seed = seed + 100;
        apply_updates(g, make_update_sequence(g, uo));
      }
      const auto links = random_links(g, 25, /*num_classes=*/2, seed + 7);
      for (const auto mode : {graph::NeighborhoodMode::kUnion,
                              graph::NeighborhoodMode::kIntersection}) {
        graph::ExtractOptions legacy;
        legacy.mode = mode;
        legacy.num_hops = 2;
        legacy.max_nodes = 20;
        legacy.collect_hull = true;
        legacy.clear_per_link = true;
        auto epoch = legacy;
        epoch.clear_per_link = false;
        auto cached = epoch;
        cached.reuse_frontiers = true;
        for (const auto& l : links) {
          const auto want = extract_enclosing_subgraph(g, l.a, l.b, legacy);
          const std::string what =
              "seed=" + std::to_string(seed) +
              " mutate=" + std::to_string(mutate) + " link=(" +
              std::to_string(l.a) + "," + std::to_string(l.b) + ")";
          expect_subgraphs_equal(extract_enclosing_subgraph(g, l.a, l.b, epoch),
                                 want, what + " epoch");
          // Twice with the cache on: the second call replays a cached
          // frontier for both endpoints.
          expect_subgraphs_equal(
              extract_enclosing_subgraph(g, l.a, l.b, cached), want,
              what + " cache-cold");
          expect_subgraphs_equal(
              extract_enclosing_subgraph(g, l.a, l.b, cached), want,
              what + " cache-warm");
        }
      }
    }
  }
}

// The frontier cache keys on the graph's generation: a mutation between two
// extractions of the same link must invalidate, never replay stale hops.
TEST(EpochExtraction, FrontierCacheInvalidatesAcrossMutations) {
  auto g = datasets::make_random_kg(random_kg_options(11));
  graph::ExtractOptions cached;
  cached.num_hops = 2;
  cached.max_nodes = 20;
  cached.reuse_frontiers = true;
  graph::ExtractOptions legacy = cached;
  legacy.reuse_frontiers = false;
  legacy.clear_per_link = true;

  const auto links = random_links(g, 10, /*num_classes=*/2, 13);
  UpdateSequenceOptions uo;
  uo.count = 5;
  for (std::uint64_t step = 0; step < 6; ++step) {
    for (const auto& l : links)
      expect_subgraphs_equal(
          extract_enclosing_subgraph(g, l.a, l.b, cached),
          extract_enclosing_subgraph(g, l.a, l.b, legacy),
          "step=" + std::to_string(step) + " link=(" + std::to_string(l.a) +
              "," + std::to_string(l.b) + ")");
    uo.seed = step + 31;
    apply_updates(g, make_update_sequence(g, uo));
  }
}

// ---- IdCapacity -------------------------------------------------------------

// Shrink the id space to 8 and drive every growth path into the guard: the
// construction API throws std::invalid_argument, the update API the typed
// GraphUpdateError::kIdOverflow.  Restores the real 2^31-1 capacity on exit.
TEST(IdCapacity, GrowthPastCapacityThrowsTypedErrors) {
  struct RestoreCapacity {
    ~RestoreCapacity() { KnowledgeGraph::set_id_capacity_for_testing(0); }
  } restore;
  KnowledgeGraph::set_id_capacity_for_testing(8);

  KnowledgeGraph g(1, 1);
  for (int i = 0; i < 8; ++i) g.add_node(0);
  EXPECT_THROW(g.add_node(0), std::invalid_argument);

  // A ring uses all 8 edge ids; the 9th add_edge must refuse.
  for (int i = 0; i < 8; ++i)
    g.add_edge(static_cast<graph::NodeId>(i),
               static_cast<graph::NodeId>((i + 2) % 8), 0);
  EXPECT_THROW(g.add_edge(0, 3, 0), std::invalid_argument);

  g.finalize();
  EXPECT_EQ(g.num_edges(), 8);
  try {
    g.insert_edge(0, 3, 0);
    FAIL() << "expected GraphUpdateError";
  } catch (const GraphUpdateError& e) {
    EXPECT_EQ(e.kind(), GraphUpdateError::Kind::kIdOverflow);
  }

  // Deleting frees a live edge but not its id slot: the id space is
  // append-only until compact() renumbers.
  g.delete_edge(0, 2);
  try {
    g.insert_edge(0, 3, 0);
    FAIL() << "expected GraphUpdateError";
  } catch (const GraphUpdateError& e) {
    EXPECT_EQ(e.kind(), GraphUpdateError::Kind::kIdOverflow);
  }
  g.compact();
  EXPECT_EQ(g.num_edges(), 7);
  g.insert_edge(0, 3, 0);  // slot reclaimed: fits again
  EXPECT_EQ(g.num_edges(), 8);

  KnowledgeGraph::set_id_capacity_for_testing(0);
  KnowledgeGraph big(1, 1);
  for (int i = 0; i < 12; ++i) big.add_node(0);  // real capacity: fine
}

TEST(IdCapacity, TestingOverrideRejectsOutOfRangeValues) {
  EXPECT_THROW(KnowledgeGraph::set_id_capacity_for_testing(-1),
               std::invalid_argument);
  EXPECT_THROW(KnowledgeGraph::set_id_capacity_for_testing(
                   static_cast<std::int64_t>(1) << 32),
               std::invalid_argument);
  KnowledgeGraph::set_id_capacity_for_testing(0);  // ensure the real limit
}

// ---- ScaleGenerator ---------------------------------------------------------

TEST(ScaleGenerator, IsDeterministicInItsSeed) {
  datasets::ScaleKGOptions o;
  o.num_nodes = 3000;
  o.mean_degree = 6.0;
  o.seed = 42;
  const auto g1 = datasets::make_scale_kg(o);
  const auto g2 = datasets::make_scale_kg(o);
  expect_graphs_equal(g1, g2, "same seed");

  o.seed = 43;
  const auto g3 = datasets::make_scale_kg(o);
  EXPECT_EQ(g3.num_nodes(), g1.num_nodes());
  // Same shape parameters, different draw: the edge sets must differ.
  bool differs = g3.num_edges() != g1.num_edges();
  for (graph::EdgeId e = 0;
       !differs && e < static_cast<graph::EdgeId>(g1.num_edges()); ++e)
    differs = g1.edge(e).src != g3.edge(e).src ||
              g1.edge(e).dst != g3.edge(e).dst;
  EXPECT_TRUE(differs);
}

TEST(ScaleGenerator, ProducesWellFormedGraphAndLinks) {
  datasets::ScaleKGOptions o;
  o.num_nodes = 2000;
  o.mean_degree = 5.0;
  o.seed = 7;
  const auto g = datasets::make_scale_kg(o);
  EXPECT_EQ(g.num_nodes(), o.num_nodes);
  // Streaming generator: edge count is exactly n * mean_degree / 2 (no
  // dedup set, duplicates allowed by design).
  EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(
                               static_cast<double>(o.num_nodes) *
                               o.mean_degree / 2.0));
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges());
       ++e) {
    const auto& rec = g.edge(e);
    ASSERT_NE(rec.src, rec.dst);
    ASSERT_GE(rec.type, 0);
    ASSERT_LT(rec.type, g.num_edge_types());
  }

  const auto links = datasets::sample_scale_links(g, 40, 11);
  ASSERT_EQ(links.size(), 40u);
  const auto links2 = datasets::sample_scale_links(g, 40, 11);
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].a, links2[i].a);
    EXPECT_EQ(links[i].b, links2[i].b);
    EXPECT_EQ(links[i].label, links2[i].label);
    EXPECT_NE(links[i].a, links[i].b);
    EXPECT_EQ(links[i].label, i % 2 == 0 ? 1 : 0);
    if (i % 2 == 0) {  // positives are live edges of the graph
      EXPECT_GE(g.find_edge(links[i].a, links[i].b), 0) << "link " << i;
    }
  }
}

}  // namespace
}  // namespace amdgcnn
