// Tests for util:: (RNG, Table, Stopwatch).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace amdgcnn::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(5);
  for (int i = 0; i < 100; ++i) differs = differs || a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(2);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7ULL)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 70);
  EXPECT_THROW(rng.uniform_int(0ULL), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(6);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0], 2000, 300);
  EXPECT_NEAR(counts[1], 6000, 500);
  EXPECT_NEAR(counts[3], 12000, 600);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(8);
  for (std::size_t k : {std::size_t{3}, std::size_t{50}, std::size_t{99}}) {
    auto s = rng.sample_without_replacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (auto x : s) EXPECT_LT(x, 100u);
  }
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(9);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ = differ || c1.next_u64() != c2.next_u64();
  EXPECT_TRUE(differ);
}

TEST(Table, FormatsAlignedAndCsv) {
  Table t({"name", "auc"});
  t.add_row({"AM-DGCNN", Table::fmt(0.98765, 2)});
  t.add_row({"Vanilla", "0.75"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("AM-DGCNN"), std::string::npos);
  EXPECT_NE(text.str().find("0.99"), std::string::npos);  // rounded
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,auc\nAM-DGCNN,0.99\nVanilla,0.75\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"quote\"inside"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a\n\"x,y\"\n\"quote\"\"inside\"\n");
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  const double t0 = w.seconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  ASSERT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GE(w.seconds(), t0);
  EXPECT_NEAR(w.millis(), w.seconds() * 1000.0, w.seconds() * 100.0 + 1.0);
}

}  // namespace
}  // namespace amdgcnn::util
