// Enclosing-subgraph extraction, DRNL labeling, feature building, sampling
// and SEAL dataset assembly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "seal/dataset.h"
#include "seal/drnl.h"
#include "seal/feature_builder.h"
#include "seal/sampling.h"
#include "test_util.h"

namespace amdgcnn {
namespace {

using graph::EnclosingSubgraph;
using graph::ExtractOptions;
using graph::NeighborhoodMode;

// ---- Subgraph extraction ------------------------------------------------------

TEST(Subgraph, TargetsAlwaysFirstAndPresent) {
  auto g = testing::path_graph(6);
  ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 4, 1, opts);
  EXPECT_EQ(sub.nodes[EnclosingSubgraph::kTargetA], 4);
  EXPECT_EQ(sub.nodes[EnclosingSubgraph::kTargetB], 1);
}

TEST(Subgraph, UnionCoversBothNeighborhoods) {
  auto g = testing::path_graph(7);  // 0-1-2-3-4-5-6
  ExtractOptions opts;
  opts.num_hops = 1;
  auto sub = extract_enclosing_subgraph(g, 1, 5, opts);
  std::set<graph::NodeId> nodes(sub.nodes.begin(), sub.nodes.end());
  EXPECT_EQ(nodes, (std::set<graph::NodeId>{0, 1, 2, 4, 5, 6}));
}

TEST(Subgraph, IntersectionKeepsOnlySharedNeighborhood) {
  auto g = testing::path_graph(7);
  ExtractOptions opts;
  opts.num_hops = 2;
  opts.mode = NeighborhoodMode::kIntersection;
  auto sub = extract_enclosing_subgraph(g, 2, 4, opts);
  std::set<graph::NodeId> nodes(sub.nodes.begin(), sub.nodes.end());
  // 2-hop of 2: {0..4}; 2-hop of 4: {2..6}; intersection minus targets: {3}.
  EXPECT_EQ(nodes, (std::set<graph::NodeId>{2, 3, 4}));
}

TEST(Subgraph, TargetEdgeIsMasked) {
  auto g = testing::triangle_with_tail();
  ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 0, 1, opts);
  for (const auto& e : sub.edges) {
    const bool is_target =
        (sub.nodes[e.src] == 0 && sub.nodes[e.dst] == 1) ||
        (sub.nodes[e.src] == 1 && sub.nodes[e.dst] == 0);
    EXPECT_FALSE(is_target) << "target link leaked into the subgraph";
  }
  // dist_a is computed with target b masked (DRNL convention), so b reads
  // unreachable; the shared neighbor (node 2) is at distance 1 from a.
  EXPECT_EQ(sub.dist_a[EnclosingSubgraph::kTargetB], graph::kUnreachable);
  const auto common = std::find(sub.nodes.begin(), sub.nodes.end(), 2) -
                      sub.nodes.begin();
  EXPECT_EQ(sub.dist_a[common], 1);
  EXPECT_EQ(sub.dist_b[common], 1);
}

TEST(Subgraph, InducedEdgesAreDeduplicated) {
  auto g = testing::triangle_with_tail();
  ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 0, 3, opts);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const auto& e : sub.edges) {
    auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate induced edge";
  }
}

TEST(Subgraph, DistancesUseOtherTargetMasked) {
  // 0-1-2 path, targets 0 and 2: node 1 has (1,1); target distances to each
  // other are through... masked: dist_a[b] requires path avoiding a? No:
  // dist_a is from a with b removed; b itself is unreachable (-1 kept as
  // computed) but DRNL overrides target labels anyway.
  auto g = testing::path_graph(3);
  ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 0, 2, opts);
  const auto mid = std::find(sub.nodes.begin(), sub.nodes.end(), 1) -
                   sub.nodes.begin();
  EXPECT_EQ(sub.dist_a[mid], 1);
  EXPECT_EQ(sub.dist_b[mid], 1);
  EXPECT_EQ(sub.dist_a[EnclosingSubgraph::kTargetA], 0);
  EXPECT_EQ(sub.dist_b[EnclosingSubgraph::kTargetB], 0);
}

TEST(Subgraph, CapKeepsClosestNodes) {
  // Star around the pair: many distance-1 common neighbors plus a far tail.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 12; ++i) g.add_node(0);
  // targets 0, 1; common neighbors 2..9; tail 10 off node 2, 11 off 10.
  for (int c = 2; c <= 9; ++c) {
    g.add_edge(0, c, 0);
    g.add_edge(1, c, 0);
  }
  g.add_edge(2, 10, 0);
  g.add_edge(10, 11, 0);
  g.finalize();
  ExtractOptions opts;
  opts.num_hops = 3;
  opts.max_nodes = 6;
  auto sub = extract_enclosing_subgraph(g, 0, 1, opts);
  EXPECT_EQ(sub.num_nodes(), 6);
  // All kept non-target nodes must be distance-(1,1) common neighbors.
  for (std::size_t i = 2; i < sub.nodes.size(); ++i) {
    EXPECT_GE(sub.nodes[i], 2);
    EXPECT_LE(sub.nodes[i], 9);
  }
}

TEST(Subgraph, DisconnectedTargetsStillProduceSubgraph) {
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 6; ++i) g.add_node(0);
  g.add_edge(0, 1, 0);  // component A
  g.add_edge(2, 3, 0);  // component B
  g.finalize();
  ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 0, 3, opts);
  EXPECT_GE(sub.num_nodes(), 2);
  EXPECT_EQ(sub.dist_a[EnclosingSubgraph::kTargetB], graph::kUnreachable);
}

TEST(Subgraph, RejectsDegenerateArguments) {
  auto g = testing::path_graph(4);
  ExtractOptions opts;
  EXPECT_THROW(extract_enclosing_subgraph(g, 1, 1, opts),
               std::invalid_argument);
  opts.num_hops = 0;
  EXPECT_THROW(extract_enclosing_subgraph(g, 0, 1, opts),
               std::invalid_argument);
}

// ---- DRNL ----------------------------------------------------------------------

TEST(Drnl, MatchesClosedFormTable) {
  // Hand-evaluated values of 1 + min + (d/2)((d/2) + d%2 - 1).
  EXPECT_EQ(seal::drnl_label(0, 1), 1);
  EXPECT_EQ(seal::drnl_label(1, 0), 1);
  EXPECT_EQ(seal::drnl_label(1, 1), 2);
  EXPECT_EQ(seal::drnl_label(1, 2), 3);
  EXPECT_EQ(seal::drnl_label(2, 1), 3);
  EXPECT_EQ(seal::drnl_label(2, 2), 5);
  EXPECT_EQ(seal::drnl_label(1, 3), 4);
  EXPECT_EQ(seal::drnl_label(3, 2), 7);
  EXPECT_EQ(seal::drnl_label(3, 3), 10);
}

TEST(Drnl, UnreachableGetsNullLabel) {
  EXPECT_EQ(seal::drnl_label(-1, 3), 0);
  EXPECT_EQ(seal::drnl_label(2, -1), 0);
}

class DrnlProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DrnlProperty, SymmetricInDistances) {
  const std::int32_t x = GetParam();
  for (std::int32_t y = 0; y <= 8; ++y)
    EXPECT_EQ(seal::drnl_label(x, y), seal::drnl_label(y, x));
}

TEST_P(DrnlProperty, InjectiveOverUnorderedPairs) {
  // The DRNL hash is a perfect hash of {min, max} pairs: distinct unordered
  // pairs with x, y >= 1 get distinct labels.
  const std::int32_t x = GetParam() + 1;
  std::set<std::int64_t> labels;
  for (std::int32_t y = 1; y <= 9; ++y) labels.insert(seal::drnl_label(x, y));
  EXPECT_EQ(labels.size(), 9u);
}

INSTANTIATE_TEST_SUITE_P(Distances, DrnlProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Drnl, SubgraphLabelsTargetsGetOne) {
  auto g = testing::path_graph(5);
  graph::ExtractOptions opts;
  auto sub = extract_enclosing_subgraph(g, 1, 3, opts);
  auto labels = seal::drnl_labels(sub);
  EXPECT_EQ(labels[EnclosingSubgraph::kTargetA], 1);
  EXPECT_EQ(labels[EnclosingSubgraph::kTargetB], 1);
  // Middle node (orig 2) sits at (1,1) -> label 2.
  const auto mid = std::find(sub.nodes.begin(), sub.nodes.end(), 2) -
                   sub.nodes.begin();
  EXPECT_EQ(labels[mid], 2);
}

// ---- Feature builder -------------------------------------------------------------

TEST(FeatureBuilder, WidthMatchesConfiguration) {
  graph::KnowledgeGraph g(3, 2, /*edge_attr_dim=*/2, /*node_feat_dim=*/4);
  g.add_node(0);
  g.add_node(1);
  g.add_edge(0, 1, 0);
  g.finalize();
  seal::FeatureOptions fo;
  fo.max_drnl_label = 10;
  EXPECT_EQ(seal::node_feature_dim(g, fo), 11 + 3 + 4);
  fo.use_node_type = false;
  EXPECT_EQ(seal::node_feature_dim(g, fo), 11 + 4);
  fo.use_drnl = false;
  EXPECT_EQ(seal::node_feature_dim(g, fo), 4);
  fo.use_explicit = false;
  fo.embedding_dim = 8;
  fo.embedding.assign(2 * 8, 0.0);
  EXPECT_EQ(seal::node_feature_dim(g, fo), 8);
}

TEST(FeatureBuilder, OneHotPlacementAndEdgeAttrs) {
  // Path 0-1-2 with types and typed edges.
  graph::KnowledgeGraph g(2, 2, /*edge_attr_dim=*/2);
  g.add_node(0);
  g.add_node(1);
  g.add_node(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 1);
  g.set_edge_type_attr(0, std::vector<double>{1.0, 0.0});
  g.set_edge_type_attr(1, std::vector<double>{0.0, 1.0});
  g.finalize();

  graph::ExtractOptions eo;
  auto sub = extract_enclosing_subgraph(g, 0, 2, eo);
  seal::FeatureOptions fo;
  fo.max_drnl_label = 4;
  auto sample = seal::build_sample(g, sub, /*label=*/1, fo);

  EXPECT_EQ(sample.label, 1);
  EXPECT_EQ(sample.num_nodes, 3);
  const std::int64_t f = 5 + 2;  // drnl one-hot (0..4) + 2 node types
  EXPECT_EQ(sample.node_feat.shape(), (ag::Shape{3, f}));
  // Target a (local 0): DRNL 1 -> slot 1; type 0 -> slot 5.
  EXPECT_EQ(sample.node_feat.at(0, 1), 1.0);
  EXPECT_EQ(sample.node_feat.at(0, 5), 1.0);
  EXPECT_EQ(sample.node_feat.at(0, 6), 0.0);

  // Both orientations of the 2 induced edges.
  EXPECT_EQ(sample.src.size(), 4u);
  ASSERT_TRUE(sample.edge_attr.defined());
  EXPECT_EQ(sample.edge_attr.shape(), (ag::Shape{4, 2}));
  // Edge attribute rows must match the original relation of each edge.
  for (std::size_t i = 0; i < sample.src.size(); ++i) {
    const auto u = sub.nodes[sample.src[i]];
    const auto v = sub.nodes[sample.dst[i]];
    const auto eid = g.find_edge(u, v);
    ASSERT_GE(eid, 0);
    auto expect = g.edge_attr(eid);
    EXPECT_EQ(sample.edge_attr.at(static_cast<std::int64_t>(i), 0), expect[0]);
    EXPECT_EQ(sample.edge_attr.at(static_cast<std::int64_t>(i), 1), expect[1]);
  }
}

TEST(FeatureBuilder, DrnlClampsToMaxLabel) {
  auto g = testing::path_graph(12);
  graph::ExtractOptions eo;
  eo.num_hops = 6;
  auto sub = extract_enclosing_subgraph(g, 0, 11, eo);
  seal::FeatureOptions fo;
  fo.max_drnl_label = 3;
  auto sample = seal::build_sample(g, sub, 0, fo);
  // Every row has exactly one DRNL one-hot bit within slots 0..3.
  for (std::int64_t i = 0; i < sample.num_nodes; ++i) {
    double row_sum = 0.0;
    for (std::int64_t c = 0; c <= 3; ++c) row_sum += sample.node_feat.at(i, c);
    EXPECT_EQ(row_sum, 1.0);
  }
}

TEST(FeatureBuilder, RejectsBadConfigs) {
  auto g = testing::path_graph(3);
  graph::ExtractOptions eo;
  auto sub = extract_enclosing_subgraph(g, 0, 2, eo);
  seal::FeatureOptions fo;
  fo.max_drnl_label = 0;
  EXPECT_THROW(seal::build_sample(g, sub, 0, fo), std::invalid_argument);
  fo.max_drnl_label = 8;
  fo.embedding_dim = 4;  // table missing
  EXPECT_THROW(seal::build_sample(g, sub, 0, fo), std::invalid_argument);
}

// ---- Sampling / dataset ------------------------------------------------------------

TEST(Sampling, TrainTestSplitSizes) {
  util::Rng rng(3);
  std::vector<seal::LinkExample> links(100);
  for (int i = 0; i < 100; ++i) links[i] = {0, 1, i % 3};
  auto [train, test] = seal::train_test_split(links, 0.2, rng);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_THROW(seal::train_test_split(links, 1.5, rng),
               std::invalid_argument);
}

TEST(Sampling, TrainTestSplitRejectsEmptyTrainSplit) {
  util::Rng rng(3);
  // 3 examples at fraction 0.9: n_test rounds to 3, which would leave the
  // train side empty — must throw instead of returning a useless split.
  std::vector<seal::LinkExample> links(3);
  for (int i = 0; i < 3; ++i) links[i] = {0, 1, i};
  EXPECT_THROW(seal::train_test_split(links, 0.9, rng),
               std::invalid_argument);
  EXPECT_THROW(seal::train_test_split(links, 1.0, rng),
               std::invalid_argument);
  // Fraction 0 is fine (empty TEST side is legal), as is the empty input.
  auto [all_train, no_test] = seal::train_test_split(links, 0.0, rng);
  EXPECT_EQ(all_train.size(), 3u);
  EXPECT_TRUE(no_test.empty());
  auto [et, es] = seal::train_test_split({}, 0.5, rng);
  EXPECT_TRUE(et.empty());
  EXPECT_TRUE(es.empty());
}

TEST(Sampling, NegativeLinksAreNonEdges) {
  auto g = testing::triangle_with_tail();
  util::Rng rng(4);
  auto negs = seal::sample_negative_links(g, 2, 0, rng);
  EXPECT_EQ(negs.size(), 2u);
  for (const auto& l : negs) {
    EXPECT_NE(l.a, l.b);
    EXPECT_FALSE(g.has_edge(l.a, l.b));
    EXPECT_EQ(l.label, 0);
  }
}

TEST(Sampling, DenseGraphExhaustsAndThrows) {
  // Complete graph on 4 nodes has no non-edges.
  graph::KnowledgeGraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_node(0);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 0);
  g.finalize();
  util::Rng rng(5);
  EXPECT_THROW(seal::sample_negative_links(g, 1, 0, rng), std::runtime_error);
}

TEST(Sampling, LabelHistogram) {
  std::vector<seal::LinkExample> links = {
      {0, 1, 0}, {0, 1, 2}, {0, 1, 2}, {0, 1, 1}};
  EXPECT_EQ(seal::label_histogram(links, 3),
            (std::vector<std::int64_t>{1, 1, 2}));
  EXPECT_THROW(seal::label_histogram(links, 2), std::invalid_argument);
}

TEST(SealDataset, BuildProducesAlignedSamples) {
  auto g = testing::triangle_with_tail();
  std::vector<seal::LinkExample> train = {{0, 1, 1}, {0, 3, 0}};
  std::vector<seal::LinkExample> test = {{1, 3, 0}};
  seal::SealDatasetOptions opts;
  auto ds = seal::build_seal_dataset(g, train, test, 2, opts);
  EXPECT_EQ(ds.train.size(), 2u);
  EXPECT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.num_classes, 2);
  EXPECT_EQ(ds.node_feature_dim, seal::node_feature_dim(g, opts.features));
  EXPECT_EQ(ds.edge_attr_dim, 0);
  EXPECT_GT(ds.mean_subgraph_nodes(), 0.0);
  for (const auto& s : ds.train)
    EXPECT_EQ(s.node_feat.dim(0), s.num_nodes);
  EXPECT_THROW(seal::build_seal_dataset(g, train, test, 1, opts),
               std::invalid_argument);
  std::vector<seal::LinkExample> bad = {{0, 1, 5}};
  EXPECT_THROW(seal::build_seal_dataset(g, bad, {}, 2, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace amdgcnn
